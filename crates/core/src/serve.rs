//! Concurrent batch serving: a fixed pool of worker threads fanning a
//! request stream over one shared backend — a static [`SelectionEngine`],
//! a [`LiveEngine`] (via [`ServingEngine::new_live`]) whose epoch snapshots
//! let the pool race a concurrent writer without locks, or a
//! [`ShardedEngine`] (via [`ServingEngine::new_sharded`]) whose tid-range
//! shards fan each request across their own worker pool.
//!
//! The engine has been built for this since PR 2: it is `Send + Sync`,
//! cloning it is a cheap `Arc` handle, every shared artifact is a
//! first-touch-safe `OnceLock`, and the result cache takes its own lock. The
//! [`ServingEngine`] is the driver that actually exercises that contract —
//! the "millions of lookups" workload of the paper's §6 evaluation run as a
//! request stream instead of a hand-written loop.
//!
//! ## Execution model
//!
//! [`ServingEngine::serve`] spawns `workers` scoped `std::thread` workers
//! (no external runtime — the workspace builds offline) over a shared atomic
//! cursor into the request slice. Workers claim requests one at a time, so
//! load balances even when per-request cost varies by orders of magnitude
//! across predicates; each worker tokenizes the query string, resolves the
//! predicate handle and executes through the engine's cached, pushdown
//! execution path. Results return **in submission order**, each with a
//! [`ServeStats`] record (queue wait, execution time, cache hit, worker id).
//!
//! ## Determinism
//!
//! Executions are deterministic and artifacts immutable once built, so a
//! concurrent run returns byte-identical results to a serial run of the same
//! requests — including when worker threads race the first-touch
//! construction of lazy artifacts. The `engine_concurrent` integration tier
//! asserts exactly that, differentially against a single-threaded run.
//!
//! ## Metrics
//!
//! The engine records per-predicate execution latency; [`ServingEngine::metrics`]
//! aggregates count / p50 / p95 / max per predicate kind — the measured
//! per-predicate costs that cost-aware scheduling over expensive predicates
//! assumes as its input.

use crate::engine::{BudgetReport, Exec, SelectionEngine};
use crate::live::{LiveEngine, LiveMetrics, LiveQueryStats};
use crate::params::ExecBudget;
use crate::predicate::PredicateKind;
use crate::record::ScoredTid;
use crate::shard::{panic_message, ShardedEngine};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One unit of serving work: execute `kind` over `text` in mode `exec`.
/// Requests carry the raw query string — tokenization happens on the worker
/// thread, so query preparation parallelizes along with execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Which predicate to execute.
    pub kind: PredicateKind,
    /// The raw query string (tokenized on the serving worker).
    pub text: String,
    /// The execution mode pushed down into the engine.
    pub exec: Exec,
    /// Per-request execution-budget override. `None` uses the backend's
    /// engine-wide default ([`crate::Params::budget`], unlimited unless
    /// configured).
    pub budget: Option<ExecBudget>,
    /// Per-request routing-policy override for the bounded-vs-scan decision
    /// of `Exec::TopK` / `Exec::Threshold`. `None` uses the backend's
    /// engine-wide policy ([`crate::Params::route`]). Routing never changes
    /// a result, only its cost — but an overridden request bypasses the
    /// result caches in both directions (the `TopK` tie class may legally
    /// differ between routes).
    pub route: Option<crate::cost::RoutePolicy>,
}

impl ServeRequest {
    /// Build a request (engine-default budget and routing policy).
    pub fn new(kind: PredicateKind, text: impl Into<String>, exec: Exec) -> Self {
        ServeRequest { kind, text: text.into(), exec, budget: None, route: None }
    }

    /// Override the execution budget for this request only. The deadline
    /// also bounds queue wait: a request claimed after its deadline has
    /// passed is shed with [`crate::DaspError::Timeout`] instead of
    /// executed.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Override the routing policy for this request only (uncached in both
    /// directions; see [`ServeRequest::route`]).
    pub fn with_route(mut self, policy: crate::cost::RoutePolicy) -> Self {
        self.route = Some(policy);
        self
    }
}

/// Per-request accounting, attached to every [`ServeResponse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Time between batch submission and a worker claiming the request.
    pub queue_wait: Duration,
    /// Time the worker spent on the request: query tokenization, handle
    /// resolution and execution (cache probe included).
    pub exec_time: Duration,
    /// Whether the engine's result cache answered the request.
    pub cache_hit: bool,
    /// Index of the worker that served the request (`0..workers`).
    pub worker: usize,
    /// Segment observability of a live-backend request — the epoch the
    /// request executed at, segments probed, and tail-vs-sealed hit counts.
    /// `None` when serving a static [`SelectionEngine`].
    pub live: Option<LiveQueryStats>,
    /// Whether the request's execution budget tripped. The results are then
    /// the **anytime answer**: a prefix of the exact answer whose every
    /// score is bit-identical to the unbudgeted run's score for that tuple —
    /// the budget truncates coverage, never correctness. Always `false` on
    /// the unlimited path.
    pub degraded: bool,
    /// Work accounting of a budget-capped execution (candidates scored,
    /// postings touched, elapsed). `None` on the unlimited path.
    pub budget: Option<BudgetReport>,
    /// The router's bounded-vs-scan decision for this request (estimate,
    /// chosen route, decision features). `None` when the mode or predicate
    /// had no route to choose (exact modes, the eight unrouted predicates),
    /// and on cache hits (nothing executed). Feeding these reports with
    /// their measured [`ServeStats::exec_time`] back through
    /// [`ServingEngine::calibrate_routes`] turns measured costs into the
    /// `Calibrated` policy's crossover.
    pub route: Option<crate::cost::RouteReport>,
}

/// The outcome of one request: the selection result plus its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The ranked selection, or the per-request error.
    pub results: crate::error::Result<Vec<ScoredTid>>,
    /// Queue/execution accounting for this request.
    pub stats: ServeStats,
}

/// Aggregated execution-latency distribution of one predicate kind over
/// everything a [`ServingEngine`] has served (see [`ServingEngine::metrics`]).
///
/// `count`, `cache_hits`, `max` and `mean` are exact over all traffic;
/// `p50`/`p95` are nearest-rank percentiles over the most recent
/// [`LATENCY_WINDOW`] execution times per kind, so a long-lived serving
/// engine holds bounded memory no matter how many requests it has served
/// (and the percentiles track *current* latency, which is what a serving
/// dashboard wants anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Requests served for this predicate.
    pub count: usize,
    /// How many of them the result cache answered.
    pub cache_hits: usize,
    /// Median execution time (over the recent window).
    pub p50: Duration,
    /// 95th-percentile execution time (over the recent window).
    pub p95: Duration,
    /// Worst observed execution time (all traffic).
    pub max: Duration,
    /// Mean execution time (all traffic).
    pub mean: Duration,
}

/// Retained latency samples per predicate kind: percentiles are computed
/// over a sliding window of this many most-recent requests.
pub const LATENCY_WINDOW: usize = 4096;

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Running latency aggregation of one predicate kind: exact counters plus a
/// ring buffer of recent samples for the percentiles.
#[derive(Default, Clone)]
struct KindMetrics {
    count: usize,
    cache_hits: usize,
    total: Duration,
    max: Duration,
    /// The most recent `LATENCY_WINDOW` execution times (insertion order
    /// does not matter for nearest-rank percentiles).
    recent: Vec<Duration>,
    /// Ring cursor: next `recent` slot to overwrite once full.
    cursor: usize,
}

impl KindMetrics {
    fn record(&mut self, exec_time: Duration, cache_hit: bool) {
        self.count += 1;
        self.cache_hits += usize::from(cache_hit);
        self.total += exec_time;
        self.max = self.max.max(exec_time);
        if self.recent.len() < LATENCY_WINDOW {
            self.recent.push(exec_time);
        } else {
            self.recent[self.cursor] = exec_time;
        }
        self.cursor = (self.cursor + 1) % LATENCY_WINDOW;
    }

    fn stats(&self) -> LatencyStats {
        let mut sorted = self.recent.clone();
        sorted.sort_unstable();
        LatencyStats {
            count: self.count,
            cache_hits: self.cache_hits,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: self.max,
            mean: self.total / self.count as u32,
        }
    }
}

/// A thread-pooled serving layer over one [`SelectionEngine`].
///
/// Construction is free — workers are scoped threads spawned per
/// [`serve`](Self::serve) call, so an idle `ServingEngine` holds no thread
/// resources, and the engine handle it wraps can be shared with any other
/// consumer (all state that matters is inside the engine and protected).
///
/// Latency metrics accumulate across `serve` calls until
/// [`reset_metrics`](Self::reset_metrics).
///
/// # Examples
///
/// ```
/// use dasp_core::{
///     Corpus, Exec, Params, PredicateKind, SelectionEngine, ServeRequest, ServingEngine,
/// };
///
/// let engine = SelectionEngine::from_corpus(
///     Corpus::from_strings(vec!["Morgan Stanley", "Beijing Hotel"]),
///     &Params::default(),
/// );
/// let serving = ServingEngine::new(engine, 2);
/// let responses = serving.serve(&[
///     ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::TopK(1)),
///     ServeRequest::new(PredicateKind::Jaccard, "Beijing Hotel", Exec::Threshold(0.5)),
/// ]);
/// // Responses come back in submission order, each with its accounting.
/// assert_eq!(responses[0].results.as_ref().unwrap()[0].tid, 0);
/// assert!(responses[1].stats.worker < 2);
/// // Per-predicate latency aggregation over everything served so far.
/// assert_eq!(serving.metrics().len(), 2);
/// ```
pub struct ServingEngine {
    backend: Backend,
    workers: usize,
    /// One running aggregation per predicate kind, in canonical order.
    metrics: Mutex<[KindMetrics; PredicateKind::COUNT]>,
    /// Routed decisions with their measured execution times — the input
    /// [`calibrate_routes`](Self::calibrate_routes) replays. A ring of the
    /// most recent [`LATENCY_WINDOW`] samples, so calibration tracks current
    /// costs under bounded memory.
    route_samples: Mutex<RouteSamples>,
}

/// Bounded ring of `(decision, measured cost)` calibration samples.
#[derive(Default)]
struct RouteSamples {
    samples: Vec<(crate::cost::RouteReport, Duration)>,
    cursor: usize,
}

impl RouteSamples {
    fn record(&mut self, report: crate::cost::RouteReport, exec_time: Duration) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push((report, exec_time));
        } else {
            self.samples[self.cursor] = (report, exec_time);
        }
        self.cursor = (self.cursor + 1) % LATENCY_WINDOW;
    }
}

/// What a [`ServingEngine`] executes requests against: a static
/// [`SelectionEngine`] (immutable corpus), a [`LiveEngine`] (each request
/// pins the live engine's current epoch snapshot), or a [`ShardedEngine`]
/// (each request fans across the tid-range shards).
enum Backend {
    Static(SelectionEngine),
    Live(Arc<LiveEngine>),
    Sharded(Arc<ShardedEngine>),
}

impl ServingEngine {
    /// Wrap an engine with a fixed worker-pool width (at least 1).
    pub fn new(engine: SelectionEngine, workers: usize) -> Self {
        Self::with_backend(Backend::Static(engine), workers)
    }

    /// Serve a [`LiveEngine`]: requests execute against the epoch snapshot
    /// current when a worker claims them, so a batch served concurrently
    /// with a writer is equivalent to some interleaving of the requests
    /// into the mutation stream — each response carries its epoch in
    /// [`ServeStats::live`]. The engine handle is shared, so the caller
    /// keeps appending/deleting through its own clone.
    pub fn new_live(live: Arc<LiveEngine>, workers: usize) -> Self {
        Self::with_backend(Backend::Live(live), workers)
    }

    /// Serve a [`ShardedEngine`]: each request fans across the backend's
    /// tid-range shards under their shared θ/τ bar. Exact modes return the
    /// monolith's bytes; a *cold* bounded top-k answer is tie-class-equal at
    /// the k boundary (repeats are byte-stable through the merged-result
    /// cache). The handle is shared, so other consumers keep querying
    /// through their own clone.
    pub fn new_sharded(sharded: Arc<ShardedEngine>, workers: usize) -> Self {
        Self::with_backend(Backend::Sharded(sharded), workers)
    }

    fn with_backend(backend: Backend, workers: usize) -> Self {
        ServingEngine {
            backend,
            workers: workers.max(1),
            metrics: Mutex::new(std::array::from_fn(|_| KindMetrics::default())),
            route_samples: Mutex::new(RouteSamples::default()),
        }
    }

    /// The static engine requests execute against (`None` when this serving
    /// engine wraps a [`LiveEngine`] — use [`live`](Self::live) for that
    /// backend).
    pub fn engine(&self) -> Option<&SelectionEngine> {
        match &self.backend {
            Backend::Static(engine) => Some(engine),
            Backend::Live(_) | Backend::Sharded(_) => None,
        }
    }

    /// The live engine requests execute against (`None` for the other
    /// backends).
    pub fn live(&self) -> Option<&Arc<LiveEngine>> {
        match &self.backend {
            Backend::Static(_) | Backend::Sharded(_) => None,
            Backend::Live(live) => Some(live),
        }
    }

    /// The sharded engine requests execute against (`None` for the other
    /// backends).
    pub fn sharded(&self) -> Option<&Arc<ShardedEngine>> {
        match &self.backend {
            Backend::Static(_) | Backend::Live(_) => None,
            Backend::Sharded(sharded) => Some(sharded),
        }
    }

    /// Segment layout and mutation counters of the live backend (`None` for
    /// a static backend) — the serving-side surface of
    /// [`LiveEngine::metrics`].
    pub fn live_metrics(&self) -> Option<LiveMetrics> {
        self.live().map(|l| l.metrics())
    }

    /// The configured worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The effective budget of a request: its own override, else the
    /// backend engine's [`crate::Params::budget`].
    fn default_budget(&self) -> ExecBudget {
        match &self.backend {
            Backend::Static(engine) => engine.params().budget,
            Backend::Live(live) => live.params().budget,
            Backend::Sharded(sharded) => sharded.params().budget,
        }
    }

    /// Execute a request stream over the worker pool, returning one response
    /// per request **in submission order**. Workers claim requests from a
    /// shared cursor (dynamic load balancing); results are byte-identical to
    /// a serial execution of the same requests in any pool width.
    ///
    /// ## Fault isolation
    ///
    /// Each request executes under [`std::panic::catch_unwind`]: a panic
    /// becomes a [`crate::DaspError::Panicked`] response on its own slot
    /// while the pool and every other slot keep working. Workers write
    /// responses into per-slot cells as they go, so even a worker thread
    /// that dies outright (a panic escaping the per-request boundary) loses
    /// only the one request it was serving — the batch loop respawns
    /// replacement workers until the cursor drains, and a claimed slot left
    /// unwritten by a dead worker is reported as `Panicked` rather than
    /// retried (a deterministic panic must not retry forever).
    pub fn serve(&self, requests: &[ServeRequest]) -> Vec<ServeResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let submitted = Instant::now();
        let cursor = AtomicUsize::new(0);
        let pool = self.workers.min(n);
        let slots: Vec<OnceLock<ServeResponse>> = (0..n).map(|_| OnceLock::new()).collect();
        // Respawn rounds: a dead worker has always already claimed its
        // request (the claim is its first operation), so the cursor strictly
        // advances every round and the loop terminates in at most `n`
        // rounds.
        loop {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..pool)
                    .map(|worker| {
                        let cursor = &cursor;
                        let slots = &slots;
                        scope.spawn(move || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let queue_wait = submitted.elapsed();
                            let response = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                self.serve_one(&requests[i], queue_wait, worker)
                            }))
                            .unwrap_or_else(|payload| ServeResponse {
                                results: Err(crate::error::DaspError::Panicked(panic_message(
                                    payload.as_ref(),
                                ))),
                                stats: ServeStats {
                                    queue_wait,
                                    exec_time: Duration::ZERO,
                                    cache_hit: false,
                                    worker,
                                    live: None,
                                    degraded: false,
                                    budget: None,
                                    route: None,
                                },
                            });
                            let _ = slots[i].set(response);
                        })
                    })
                    .collect();
                // Join explicitly and swallow worker deaths — an Err here is
                // a panic that escaped the per-request catch; the claimed
                // slot it abandoned is reported below.
                for handle in handles {
                    let _ = handle.join();
                }
            });
            if cursor.load(Ordering::Relaxed) >= n {
                break;
            }
        }
        let responses: Vec<ServeResponse> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|| ServeResponse {
                    results: Err(crate::error::DaspError::Panicked(
                        "worker died while serving this request".to_string(),
                    )),
                    stats: ServeStats {
                        queue_wait: Duration::ZERO,
                        exec_time: Duration::ZERO,
                        cache_hit: false,
                        worker: 0,
                        live: None,
                        degraded: false,
                        budget: None,
                        route: None,
                    },
                })
            })
            .collect();
        // Latency aggregation merges once per batch under one lock: the
        // per-request path takes no shared serving lock (only the engine's
        // own cache lock), so metrics never serialize the worker pool —
        // which matters exactly for the warm-cache microsecond requests a
        // per-request lock would dominate. Only Ok responses are recorded:
        // panicked and shed slots carry no meaningful execution time.
        let mut inner = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (request, response) in requests.iter().zip(&responses) {
            if response.results.is_ok() {
                inner[request.kind.index()]
                    .record(response.stats.exec_time, response.stats.cache_hit);
            }
        }
        drop(inner);
        // Retain routed decisions with their measured costs for calibration
        // (same single-lock-per-batch discipline as the latency metrics).
        let mut samples =
            self.route_samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for response in &responses {
            if let (Ok(_), Some(report)) = (&response.results, response.stats.route) {
                samples.record(report, response.stats.exec_time);
            }
        }
        drop(samples);
        responses
    }

    fn serve_one(
        &self,
        request: &ServeRequest,
        queue_wait: Duration,
        worker: usize,
    ) -> ServeResponse {
        let budget = crate::fault::maybe_exhaust_budget(
            "serve.request",
            request.budget.unwrap_or_else(|| self.default_budget()),
        );
        // Admission control: a request whose queue wait already exceeds its
        // deadline could only produce an answer the caller has given up on —
        // shed it with a typed error instead of executing it.
        if let Some(deadline) = budget.deadline {
            if queue_wait > deadline {
                return ServeResponse {
                    results: Err(crate::error::DaspError::Timeout { waited: queue_wait, deadline }),
                    stats: ServeStats {
                        queue_wait,
                        exec_time: Duration::ZERO,
                        cache_hit: false,
                        worker,
                        live: None,
                        degraded: false,
                        budget: None,
                        route: None,
                    },
                };
            }
        }
        relq::fault_point("serve.request");
        // The request's route trace: an override (uncached both directions)
        // when the request carries a policy, pure observability otherwise.
        let trace = match request.route {
            Some(policy) => crate::cost::RouteTrace::with_policy(policy),
            None => crate::cost::RouteTrace::new(),
        };
        let started = Instant::now();
        let (results, cache_hit, live, degraded, report) = match &self.backend {
            Backend::Static(engine) => {
                let handle = engine.predicate(request.kind);
                let query = engine.query(&request.text);
                match handle.execute_budgeted_routed(&query, request.exec, budget, Some(&trace)) {
                    Ok(run) => (Ok(run.results), run.cache_hit, None, run.degraded, run.report),
                    Err(e) => (Err(e), false, None, false, None),
                }
            }
            Backend::Live(engine) => {
                match engine.execute_budgeted_routed(
                    request.kind,
                    &request.text,
                    request.exec,
                    budget,
                    Some(&trace),
                ) {
                    Ok((run, stats)) => {
                        (Ok(run.results), run.cache_hit, Some(stats), run.degraded, run.report)
                    }
                    Err(e) => (Err(e), false, None, false, None),
                }
            }
            Backend::Sharded(engine) => {
                match engine.execute_budgeted_routed(
                    request.kind,
                    &request.text,
                    request.exec,
                    budget,
                    Some(&trace),
                ) {
                    Ok(run) => (Ok(run.results), run.cache_hit, None, run.degraded, run.report),
                    Err(e) => (Err(e), false, None, false, None),
                }
            }
        };
        let exec_time = started.elapsed();
        ServeResponse {
            results,
            stats: ServeStats {
                queue_wait,
                exec_time,
                cache_hit,
                worker,
                live,
                degraded,
                budget: report,
                route: trace.report(),
            },
        }
    }

    /// Per-predicate execution-latency aggregation over everything served so
    /// far, in canonical predicate order, skipping kinds with no traffic.
    pub fn metrics(&self) -> Vec<(PredicateKind, LatencyStats)> {
        let inner = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        PredicateKind::all()
            .iter()
            .map(|&kind| (kind, &inner[kind.index()]))
            .filter(|(_, m)| m.count > 0)
            .map(|(kind, m)| (kind, m.stats()))
            .collect()
    }

    /// Drop all accumulated latency samples and counters (calibration
    /// samples included).
    pub fn reset_metrics(&self) {
        let mut inner = self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *inner = std::array::from_fn(|_| KindMetrics::default());
        let mut samples =
            self.route_samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *samples = RouteSamples::default();
    }

    /// How many routed `(decision, measured cost)` samples are retained for
    /// calibration (bounded by [`LATENCY_WINDOW`]).
    pub fn route_sample_count(&self) -> usize {
        self.route_samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner).samples.len()
    }

    /// Close the measurement loop: replay the retained routed decisions
    /// against their measured execution times
    /// ([`crate::cost::calibrate_crossover`]), and install the cost-minimal
    /// crossover on every engine of the backend — the threshold the
    /// [`Calibrated`](crate::cost::RoutePolicy::Calibrated) policy decides
    /// against. Returns the installed crossover, or `None` when the samples
    /// cannot identify one (no routed traffic, or all of it on one route).
    pub fn calibrate_routes(&self) -> Option<f64> {
        let samples = {
            let inner =
                self.route_samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.samples.clone()
        };
        let crossover = crate::cost::calibrate_crossover(&samples)?;
        match &self.backend {
            Backend::Static(engine) => engine.set_route_crossover(crossover),
            Backend::Live(live) => live.set_route_crossover(crossover),
            Backend::Sharded(sharded) => sharded.set_route_crossover(crossover),
        }
        Some(crossover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, TokenizedCorpus};
    use crate::params::Params;
    use std::sync::Arc;

    fn engine() -> SelectionEngine {
        let corpus = Arc::new(TokenizedCorpus::build(
            Corpus::from_strings(vec![
                "Morgan Stanley Group Inc.",
                "Morgan Stanle Grop Inc.",
                "Silicon Valley Group, Inc.",
                "Beijing Hotel",
                "Beijing Labs Limited",
                "AT&T Incorporated",
            ]),
            dasp_text::QgramConfig::new(2),
        ));
        SelectionEngine::build(corpus, &Params::default())
    }

    #[test]
    fn live_backend_reports_segment_observability() {
        let params = Params { segment_seal: 16, ..Params::default() };
        let live = Arc::new(crate::live::LiveEngine::from_corpus(
            Corpus::from_strings(vec!["Morgan Stanley Group Inc.", "Beijing Hotel"]),
            &params,
        ));
        let added = live.append("Morgan Stanley Dean Witter");
        let serving = ServingEngine::new_live(live.clone(), 2);
        assert!(serving.live().is_some());
        let request = ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::TopK(2));
        let responses = serving.serve(&[request.clone(), request]);
        for response in &responses {
            let stats = response.stats.live.expect("live backend attaches segment stats");
            assert_eq!(stats.epoch, live.epoch());
            // Sealed seed segment + one-record tail.
            assert!(stats.cache_hit || stats.segments_probed == 2);
            assert!(stats.tail_hits >= 1, "the appended record is a top-2 hit");
            assert!(
                response.results.as_ref().unwrap().iter().any(|s| s.tid == added),
                "results carry global tids"
            );
        }
        let metrics = serving.live_metrics().expect("live backend exposes segment metrics");
        assert_eq!((metrics.sealed_segments, metrics.tail_len), (1, 1));
        assert_eq!(metrics.live_records, 3);
    }

    #[test]
    fn sharded_backend_serves_monolith_bytes_for_exact_modes() {
        let params = Params { shards: 3, ..Params::default() };
        let sharded = Arc::new(crate::shard::ShardedEngine::from_corpus(
            Corpus::from_strings(vec![
                "Morgan Stanley Group Inc.",
                "Morgan Stanle Grop Inc.",
                "Silicon Valley Group, Inc.",
                "Beijing Hotel",
                "Beijing Labs Limited",
                "AT&T Incorporated",
            ]),
            &params,
        ));
        let serving = ServingEngine::new_sharded(sharded.clone(), 2);
        assert!(serving.sharded().is_some());
        assert!(serving.engine().is_none() && serving.live().is_none());
        let monolith = sharded.rebuild_monolith();
        let requests = [
            ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::Rank),
            ServeRequest::new(PredicateKind::Jaccard, "Beijing Hotel", Exec::Threshold(0.2)),
        ];
        for response in serving.serve(&requests).iter().zip(&requests).map(|(r, q)| {
            let expected =
                monolith.predicate(q.kind).execute(&monolith.query(&q.text), q.exec).unwrap();
            assert_eq!(r.results.as_ref().unwrap(), &expected, "{:?}", q.kind);
            r
        }) {
            assert!(response.stats.live.is_none(), "sharded backend attaches no live stats");
        }
    }

    fn mixed_requests() -> Vec<ServeRequest> {
        let mut requests = Vec::new();
        for text in ["Morgan Stanley Group Inc.", "Beijing Hotel", "AT&T Inc."] {
            for kind in [
                PredicateKind::IntersectSize,
                PredicateKind::Cosine,
                PredicateKind::EditSimilarity,
                PredicateKind::SoftTfIdf,
            ] {
                requests.push(ServeRequest::new(kind, text, Exec::TopK(3)));
                requests.push(ServeRequest::new(kind, text, Exec::Rank));
            }
        }
        requests
    }

    #[test]
    fn serve_returns_serial_bytes_in_submission_order() {
        let requests = mixed_requests();
        // Serial reference over a separate engine.
        let reference = engine();
        let expected: Vec<_> = requests
            .iter()
            .map(|r| {
                reference.predicate(r.kind).execute(&reference.query(&r.text), r.exec).unwrap()
            })
            .collect();
        // A fresh engine served with 4 workers: first touches of every lazy
        // artifact happen under concurrency.
        let serving = ServingEngine::new(engine(), 4);
        let responses = serving.serve(&requests);
        assert_eq!(responses.len(), requests.len());
        for (i, (response, expected)) in responses.iter().zip(&expected).enumerate() {
            assert_eq!(
                response.results.as_ref().unwrap(),
                expected,
                "request {i} diverged from the serial run"
            );
            assert!(response.stats.worker < 4);
        }
    }

    #[test]
    fn metrics_aggregate_per_predicate_latency() {
        let serving = ServingEngine::new(engine(), 2);
        let requests = mixed_requests();
        serving.serve(&requests);
        let metrics = serving.metrics();
        assert_eq!(metrics.len(), 4, "one row per predicate kind with traffic");
        let total: usize = metrics.iter().map(|(_, m)| m.count).sum();
        assert_eq!(total, requests.len());
        for (kind, m) in &metrics {
            assert!(m.count > 0, "{kind}: empty metrics row");
            assert!(m.p50 <= m.p95, "{kind}: p50 above p95");
            assert!(m.p95 <= m.max, "{kind}: p95 above max");
            assert!(m.max > Duration::ZERO, "{kind}: zero max latency");
        }
        serving.reset_metrics();
        assert!(serving.metrics().is_empty());
    }

    #[test]
    fn cache_hits_are_reported_per_request() {
        // One worker makes hit attribution deterministic: the second
        // occurrence of an identical request must be served by the cache.
        let serving = ServingEngine::new(engine(), 1);
        let request = ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::TopK(2));
        let responses = serving.serve(&[request.clone(), request]);
        assert!(!responses[0].stats.cache_hit);
        assert!(responses[1].stats.cache_hit);
        assert_eq!(responses[0].results.as_ref().unwrap(), responses[1].results.as_ref().unwrap());
        let metrics = serving.metrics();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].1.cache_hits, 1);
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let serving = ServingEngine::new(engine(), 0);
        assert_eq!(serving.workers(), 1, "a zero-width pool clamps to one worker");
        assert!(serving.serve(&[]).is_empty());
        // More workers than requests: the pool shrinks to the batch.
        let serving = ServingEngine::new(engine(), 64);
        let responses =
            serving.serve(&[ServeRequest::new(PredicateKind::Jaccard, "Beijing", Exec::Rank)]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].results.is_ok());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.50), ms(50));
        assert_eq!(percentile(&sorted, 0.95), ms(95));
        assert_eq!(percentile(&sorted, 1.0), ms(100));
        assert_eq!(percentile(&[ms(7)], 0.5), ms(7));
        let mut metrics = KindMetrics::default();
        metrics.record(ms(3), false);
        metrics.record(ms(1), true);
        metrics.record(ms(2), false);
        let stats = metrics.stats();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.p50, ms(2));
        assert_eq!(stats.max, ms(3));
        assert_eq!(stats.mean, ms(2));
    }

    #[test]
    fn latency_samples_are_bounded_while_counters_stay_exact() {
        // A long-lived serving engine must hold bounded memory: percentiles
        // come from a sliding window, count/mean/max from exact counters.
        let ms = |n: u64| Duration::from_millis(n);
        let mut metrics = KindMetrics::default();
        // One early outlier, then steady traffic until it rolls out of the
        // window.
        metrics.record(ms(5000), false);
        for _ in 0..LATENCY_WINDOW + 50 {
            metrics.record(ms(2), false);
        }
        assert_eq!(metrics.recent.len(), LATENCY_WINDOW, "window must stay bounded");
        let stats = metrics.stats();
        assert_eq!(stats.count, LATENCY_WINDOW + 51, "count covers all traffic");
        assert_eq!(stats.max, ms(5000), "max survives rolling out of the window");
        assert_eq!(stats.p95, ms(2), "percentiles track the current window");
    }

    #[test]
    fn serving_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingEngine>();
        assert_send_sync::<ServeRequest>();
        assert_send_sync::<ServeResponse>();
    }

    #[test]
    fn per_request_route_overrides_are_honored_and_reported() {
        use crate::cost::{RouteChoice, RoutePolicy};
        let serving = ServingEngine::new(engine(), 2);
        let base = ServeRequest::new(
            PredicateKind::IntersectSize,
            "Morgan Stanley Group Inc.",
            Exec::Threshold(2.0),
        );
        let requests = [
            base.clone().with_route(RoutePolicy::AlwaysScan),
            base.clone().with_route(RoutePolicy::AlwaysBounded),
            base.clone().with_route(RoutePolicy::Adaptive),
            base.clone(),
            // Unrouted predicate: served fine, no route report.
            ServeRequest::new(PredicateKind::Jaccard, "Beijing Hotel", Exec::Threshold(0.2))
                .with_route(RoutePolicy::AlwaysScan),
        ];
        let responses = serving.serve(&requests);
        let reference = responses[0].results.as_ref().unwrap();
        for (i, (response, request)) in responses.iter().zip(&requests).enumerate().take(3) {
            assert_eq!(
                response.results.as_ref().unwrap(),
                reference,
                "request {i} diverged across policies"
            );
            let route = response.stats.route.expect("routed threshold must report");
            assert_eq!(Some(route.policy), request.route, "request {i}");
            match request.route {
                Some(RoutePolicy::AlwaysScan) => assert_eq!(route.chosen, RouteChoice::Scan),
                Some(RoutePolicy::AlwaysBounded) => {
                    assert_eq!(route.chosen, RouteChoice::Bounded)
                }
                _ => {}
            }
        }
        // No override: the engine default (AlwaysBounded) decides, and the
        // report carries that policy.
        let default_route = responses[3].stats.route.expect("default policy still reports");
        assert_eq!(default_route.policy, RoutePolicy::AlwaysBounded);
        assert_eq!(responses[3].results.as_ref().unwrap(), reference);
        // Unrouted predicate: override is inert, no report is fabricated.
        assert!(responses[4].results.is_ok());
        assert!(responses[4].stats.route.is_none());
        // Every routed response fed the calibration window.
        assert_eq!(serving.route_sample_count(), 4);
        serving.reset_metrics();
        assert_eq!(serving.route_sample_count(), 0);
    }

    #[test]
    fn route_overrides_bypass_the_result_cache() {
        use crate::cost::RoutePolicy;
        // One worker: without the bypass the second request would be a hit.
        let serving = ServingEngine::new(engine(), 1);
        let request = ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::TopK(2))
            .with_route(RoutePolicy::AlwaysScan);
        let responses = serving.serve(&[request.clone(), request.clone()]);
        assert!(!responses[0].stats.cache_hit);
        assert!(
            !responses[1].stats.cache_hit,
            "an overridden request must not be answered from the cache"
        );
        // And it must not have seeded it either: a later un-overridden
        // request is still a miss, then caches normally.
        let plain = ServeRequest::new(PredicateKind::Bm25, "Morgan Stanley", Exec::TopK(2));
        let responses = serving.serve(&[plain.clone(), plain]);
        assert!(!responses[0].stats.cache_hit);
        assert!(responses[1].stats.cache_hit);
        assert_eq!(responses[0].results.as_ref().unwrap(), responses[1].results.as_ref().unwrap());
    }

    #[test]
    fn calibration_learns_a_crossover_from_served_traffic() {
        use crate::cost::RoutePolicy;
        let serving = ServingEngine::new(engine(), 2);
        // No routed traffic yet: nothing to calibrate.
        assert_eq!(serving.calibrate_routes(), None);
        // Mixed adaptive traffic across tight and loose bars lands samples
        // on both routes (tight τ → bounded, loose τ → scan).
        let mut requests = Vec::new();
        for text in ["Morgan Stanley Group Inc.", "Beijing Hotel", "AT&T Incorporated"] {
            for tau in [1.0, 8.0, 1e5] {
                requests.push(
                    ServeRequest::new(PredicateKind::IntersectSize, text, Exec::Threshold(tau))
                        .with_route(RoutePolicy::Adaptive),
                );
            }
        }
        let responses = serving.serve(&requests);
        assert!(responses.iter().all(|r| r.results.is_ok()));
        let chosen: std::collections::HashSet<_> =
            responses.iter().filter_map(|r| r.stats.route.map(|route| route.chosen)).collect();
        assert_eq!(chosen.len(), 2, "traffic must exercise both routes to calibrate");
        let crossover = serving.calibrate_routes().expect("two-sided traffic identifies one");
        assert!((0.0..=1.0).contains(&crossover));
        // The learned value is installed on the backend: Calibrated decides
        // against it, Adaptive still against the default.
        let router_view = serving.engine().unwrap();
        let (_, report) = router_view
            .predicate(PredicateKind::IntersectSize)
            .execute_routed(
                &router_view.query("Morgan Stanley"),
                Exec::Threshold(2.0),
                RoutePolicy::Adaptive,
            )
            .unwrap();
        assert!(report.is_some(), "adaptive routing stays live after calibration");
    }
}
