//! The base relation and its tokenized form.
//!
//! Preprocessing in the paper happens in two phases (§5.5.1): tokenization
//! (common to all predicates) and weight computation (predicate specific).
//! [`TokenizedCorpus`] is the output of the first phase; the predicate
//! constructors in the sibling modules perform the second phase.

use crate::dict::{TokenDict, TokenId};
use crate::record::{Record, Tid};
use dasp_text::{qgrams, word_tokens, QgramConfig};
use std::sync::Arc;

/// The base relation `R`: a collection of string tuples.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    records: Vec<Record>,
}

impl Corpus {
    /// Build a corpus from strings; tuple ids are assigned densely from 0.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let records =
            strings.into_iter().enumerate().map(|(i, s)| Record::new(i as Tid, s)).collect();
        Corpus { records }
    }

    /// Build a corpus from pre-assigned records. Tuple ids must be dense from
    /// 0 in record order (the invariant [`Corpus::get`] relies on for O(1)
    /// lookup; [`Corpus::from_strings`] guarantees it by construction).
    pub fn from_records(records: Vec<Record>) -> Self {
        debug_assert!(
            records.iter().enumerate().all(|(i, r)| r.tid == i as Tid),
            "corpus tids must be dense from 0 in record order"
        );
        Corpus { records }
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of tuples `N`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the corpus has no tuples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the given tuple id, if present. Tids are dense from 0
    /// (asserted at construction in debug builds), so this is a direct O(1)
    /// index; the id recheck keeps the lookup correct — returning `None`
    /// rather than a wrong record — if the density invariant is ever broken.
    pub fn get(&self, tid: Tid) -> Option<&Record> {
        let record = self.records.get(tid as usize)?;
        debug_assert_eq!(record.tid, tid, "corpus tids must be dense from 0");
        (record.tid == tid).then_some(record)
    }

    /// Average string length in characters (reported in Table 5.1).
    pub fn avg_string_len(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: usize = self.records.iter().map(|r| r.text.chars().count()).sum();
        total as f64 / self.records.len() as f64
    }

    /// Average number of whitespace-separated words per tuple (Table 5.1).
    pub fn avg_words_per_tuple(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: usize = self.records.iter().map(|r| word_tokens(&r.text).len()).sum();
        total as f64 / self.records.len() as f64
    }
}

/// A query string tokenized against an existing corpus dictionary.
#[derive(Debug, Clone, Default)]
pub struct QueryTokens {
    /// Known tokens with their query term frequency, sorted by token id.
    pub tokens: Vec<(TokenId, u32)>,
    /// Number of query token occurrences whose token never appears in the
    /// base relation (they can never join, but they count towards |Q|).
    pub unknown_occurrences: u32,
    /// Number of *distinct* unknown tokens.
    pub unknown_distinct: u32,
}

impl QueryTokens {
    /// Total number of token occurrences in the query (|Q| with multiplicity).
    pub fn total_occurrences(&self) -> u32 {
        self.tokens.iter().map(|(_, tf)| tf).sum::<u32>() + self.unknown_occurrences
    }

    /// Number of distinct tokens in the query (known + unknown).
    pub fn distinct_count(&self) -> u32 {
        self.tokens.len() as u32 + self.unknown_distinct
    }
}

/// The frozen corpus-level statistics every predicate's weight formulas
/// consume: `N`, per-token `df`/`cf`, collection size `cs`, `avgdl` and the
/// word-level document frequencies. Bundled behind one `Arc` so a *projected*
/// corpus (see [`TokenizedCorpus::project`]) shares its parent's statistics
/// verbatim instead of deriving divergent ones from its own record slice —
/// the property that makes per-segment scoring in `dasp_core::live`
/// bit-identical to a monolithic engine with the same statistics.
#[derive(Debug)]
struct CorpusStats {
    /// The statistical number of tuples `N` used by IDF/RSJ weights. Equal to
    /// the record count at [`TokenizedCorpus::build`] time; a projection over
    /// a different record subset keeps this value frozen.
    n: usize,
    /// Per token id: number of records containing the token (`df` / `n_t`).
    df: Vec<u32>,
    /// Per token id: total number of occurrences in the collection (`cf`).
    cf: Vec<u64>,
    /// Collection size `cs`: total token occurrences.
    cs: u64,
    /// Average record length in q-gram tokens (`cs / N` at build time).
    avgdl: f64,
    /// Per token id: sum over records of the maximum-likelihood estimate
    /// `tf / dl` — the numerator of the language model's `pavg(t)`
    /// (Equation 3.8), which is a corpus-wide aggregate and therefore
    /// frozen along with `df`/`cf`.
    pml_sum: Vec<f64>,
    /// Per word id: number of records containing it.
    word_df: Vec<u32>,
}

/// The tokenized base relation plus all corpus-level statistics every
/// predicate's weight formulas need (tf, df, cf, dl, avgdl, word tokens).
///
/// The dictionaries and statistics live behind `Arc`s: cloning a tokenized
/// corpus, or projecting a record subset through it
/// ([`project`](Self::project)), shares them by reference — O(records), never
/// O(vocabulary).
#[derive(Debug, Clone)]
pub struct TokenizedCorpus {
    corpus: Corpus,
    config: QgramConfig,
    dict: Arc<TokenDict>,
    /// Per record: (token id, term frequency) pairs, sorted by token id.
    rec_tokens: Vec<Vec<(TokenId, u32)>>,
    /// Per record: total number of q-gram token occurrences (`dl`).
    rec_dl: Vec<u32>,
    /// Frozen collection statistics (shared with projections).
    stats: Arc<CorpusStats>,
    /// Word-token dictionary (combination predicates).
    word_dict: Arc<TokenDict>,
    /// Per record: word tokens in order (with duplicates).
    rec_words: Vec<Vec<TokenId>>,
    /// Per word id: distinct q-gram set of the word (second-level tokens).
    word_qgram_sets: Arc<Vec<Vec<String>>>,
}

impl TokenizedCorpus {
    /// Tokenize a corpus: q-gram tokens for every tuple, word tokens and
    /// word-level q-grams for the combination predicates, plus statistics.
    pub fn build(corpus: Corpus, config: QgramConfig) -> Self {
        let n = corpus.len();
        let mut dict = TokenDict::new();
        let mut word_dict = TokenDict::new();
        let mut rec_tokens = Vec::with_capacity(n);
        let mut rec_dl = Vec::with_capacity(n);
        let mut rec_words = Vec::with_capacity(n);
        let mut df: Vec<u32> = Vec::new();
        let mut cf: Vec<u64> = Vec::new();
        let mut pml_sum: Vec<f64> = Vec::new();
        let mut word_df: Vec<u32> = Vec::new();
        let mut cs: u64 = 0;

        for record in corpus.records() {
            // Q-gram tokens with multiplicity.
            let grams = qgrams(&record.text, config);
            let mut counts: Vec<(TokenId, u32)> = Vec::new();
            for gram in &grams {
                let id = dict.intern(gram);
                if id as usize >= cf.len() {
                    cf.push(0);
                    df.push(0);
                    pml_sum.push(0.0);
                }
                cf[id as usize] += 1;
                match counts.binary_search_by_key(&id, |(t, _)| *t) {
                    Ok(pos) => counts[pos].1 += 1,
                    Err(pos) => counts.insert(pos, (id, 1)),
                }
            }
            let dl = (grams.len() as f64).max(1.0);
            for (id, tf) in &counts {
                df[*id as usize] += 1;
                pml_sum[*id as usize] += *tf as f64 / dl;
            }
            cs += grams.len() as u64;
            rec_dl.push(grams.len() as u32);
            rec_tokens.push(counts);

            // Word tokens.
            let words = word_tokens(&record.text);
            let mut ids = Vec::with_capacity(words.len());
            let mut seen_in_rec: Vec<TokenId> = Vec::new();
            for w in &words {
                let id = word_dict.intern(w);
                if id as usize >= word_df.len() {
                    word_df.push(0);
                }
                ids.push(id);
                if !seen_in_rec.contains(&id) {
                    seen_in_rec.push(id);
                    word_df[id as usize] += 1;
                }
            }
            rec_words.push(ids);
        }

        // Second-level tokenization: q-grams of each distinct word token.
        let word_qgram_sets = word_dict
            .iter()
            .map(|(_, w)| {
                dasp_text::qgram::word_qgrams(w, config)
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect()
            })
            .collect();

        let avgdl = if n == 0 { 0.0 } else { cs as f64 / n as f64 };
        TokenizedCorpus {
            corpus,
            config,
            dict: Arc::new(dict),
            rec_tokens,
            rec_dl,
            stats: Arc::new(CorpusStats { n, df, cf, cs, avgdl, pml_sum, word_df }),
            word_dict: Arc::new(word_dict),
            rec_words,
            word_qgram_sets: Arc::new(word_qgram_sets),
        }
    }

    /// Tokenize a record subset against this corpus's **frozen** dictionary
    /// and statistics: a closed-vocabulary projection. Per-record token
    /// lists, `dl` and word lists are recomputed over `records`, but the
    /// dictionaries, `df`/`cf`/`cs`, `N` and `avgdl` are shared by `Arc` from
    /// `self` — q-grams and words absent from the frozen vocabulary are
    /// dropped (the same closed-world rule as
    /// [`retain_tokens`](Self::retain_tokens) and query tokenization).
    ///
    /// This is the statistics contract of the `dasp_core::live` segment
    /// subsystem: every segment projects its records through one frozen
    /// provider, so a record's score against a query is identical no matter
    /// which segment — or which monolithic rebuild over the same provider —
    /// computes it. Statistics (and new vocabulary) refresh only at a full
    /// compaction, the same refresh discipline LSM-style search engines use.
    ///
    /// `records` must carry dense tids from 0 in order (the
    /// [`Corpus::from_records`] invariant); the cost is O(records' text), never
    /// O(frozen vocabulary).
    pub fn project(&self, records: Vec<Record>) -> TokenizedCorpus {
        let corpus = Corpus::from_records(records);
        let n = corpus.len();
        let mut rec_tokens = Vec::with_capacity(n);
        let mut rec_dl = Vec::with_capacity(n);
        let mut rec_words = Vec::with_capacity(n);
        for record in corpus.records() {
            let grams = qgrams(&record.text, self.config);
            let mut counts: Vec<(TokenId, u32)> = Vec::new();
            let mut dl = 0u32;
            for gram in &grams {
                let Some(id) = self.dict.get(gram) else { continue };
                dl += 1;
                match counts.binary_search_by_key(&id, |(t, _)| *t) {
                    Ok(pos) => counts[pos].1 += 1,
                    Err(pos) => counts.insert(pos, (id, 1)),
                }
            }
            rec_tokens.push(counts);
            rec_dl.push(dl);
            let words = word_tokens(&record.text);
            rec_words.push(words.iter().filter_map(|w| self.word_dict.get(w)).collect());
        }
        TokenizedCorpus {
            corpus,
            config: self.config,
            dict: self.dict.clone(),
            rec_tokens,
            rec_dl,
            stats: self.stats.clone(),
            word_dict: self.word_dict.clone(),
            rec_words,
            word_qgram_sets: self.word_qgram_sets.clone(),
        }
    }

    /// True when `other` shares this corpus's frozen dictionaries and
    /// statistics (i.e. one is a [`project`](Self::project)ion of the other
    /// or of a common provider) — the precondition for scores being
    /// comparable, and bit-identical, across the two.
    pub fn shares_stats(&self, other: &TokenizedCorpus) -> bool {
        Arc::ptr_eq(&self.stats, &other.stats) && Arc::ptr_eq(&self.dict, &other.dict)
    }

    /// The underlying base relation.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Q-gram configuration used for tokenization.
    pub fn config(&self) -> QgramConfig {
        self.config
    }

    /// Number of tuples `N`.
    pub fn num_records(&self) -> usize {
        self.corpus.len()
    }

    /// Number of distinct q-gram tokens in the collection.
    pub fn num_tokens(&self) -> usize {
        self.dict.len()
    }

    /// Number of distinct word tokens in the collection.
    pub fn num_word_tokens(&self) -> usize {
        self.word_dict.len()
    }

    /// The q-gram token dictionary.
    pub fn dict(&self) -> &TokenDict {
        &self.dict
    }

    /// The word token dictionary.
    pub fn word_dict(&self) -> &TokenDict {
        &self.word_dict
    }

    /// Per-record `(token, tf)` pairs.
    pub fn record_tokens(&self, idx: usize) -> &[(TokenId, u32)] {
        &self.rec_tokens[idx]
    }

    /// Record length `dl` in token occurrences.
    pub fn record_dl(&self, idx: usize) -> u32 {
        self.rec_dl[idx]
    }

    /// Word tokens of a record, in order, with duplicates.
    pub fn record_words(&self, idx: usize) -> &[TokenId] {
        &self.rec_words[idx]
    }

    /// The statistical number of tuples `N` the IDF/RSJ formulas divide by.
    /// Equal to [`num_records`](Self::num_records) for a corpus built with
    /// [`build`](Self::build); a [`project`](Self::project)ion keeps its
    /// provider's frozen value regardless of how many records it holds.
    pub fn stat_n(&self) -> usize {
        self.stats.n
    }

    /// Document frequency of a q-gram token (frozen statistic).
    pub fn df(&self, token: TokenId) -> u32 {
        self.stats.df[token as usize]
    }

    /// Collection frequency of a q-gram token (frozen statistic).
    pub fn cf(&self, token: TokenId) -> u64 {
        self.stats.cf[token as usize]
    }

    /// Collection size `cs` (total q-gram occurrences; frozen statistic).
    pub fn cs(&self) -> u64 {
        self.stats.cs
    }

    /// The language model's `pavg(t)` (Equation 3.8): the mean
    /// maximum-likelihood estimate `tf/dl` over the records containing `t`.
    /// A corpus-wide aggregate, frozen with the other statistics so
    /// projected segments score identically to their provider.
    pub fn pavg(&self, token: TokenId) -> f64 {
        let df = self.stats.df[token as usize] as f64;
        if df > 0.0 {
            self.stats.pml_sum[token as usize] / df
        } else {
            0.0
        }
    }

    /// Average record length in q-gram tokens (`avgdl`; frozen statistic).
    pub fn avgdl(&self) -> f64 {
        self.stats.avgdl
    }

    /// Document frequency of a word token (frozen statistic).
    pub fn word_df(&self, word: TokenId) -> u32 {
        self.stats.word_df[word as usize]
    }

    /// Distinct q-gram set of a word token (second-level tokenization).
    pub fn word_qgram_set(&self, word: TokenId) -> &[String] {
        &self.word_qgram_sets[word as usize]
    }

    /// IDF of a q-gram token: `log(N) - log(df)` (zero for unseen tokens),
    /// over the frozen statistical `N` ([`stat_n`](Self::stat_n)).
    pub fn idf(&self, token: TokenId) -> f64 {
        let df = self.df(token);
        if df == 0 {
            return 0.0;
        }
        (self.stats.n as f64).ln() - (df as f64).ln()
    }

    /// IDF of a word token (frozen statistics).
    pub fn word_idf(&self, word: TokenId) -> f64 {
        let df = self.word_df(word);
        if df == 0 {
            return 0.0;
        }
        (self.stats.n as f64).ln() - (df as f64).ln()
    }

    /// Average IDF over all word tokens: the weight the paper assigns to
    /// query words never seen in the base relation (§4.5).
    pub fn avg_word_idf(&self) -> f64 {
        if self.stats.word_df.is_empty() {
            return 0.0;
        }
        let len = self.stats.word_df.len();
        let total: f64 = (0..len).map(|i| self.word_idf(i as TokenId)).sum();
        total / len as f64
    }

    /// Robertson–Sparck Jones weight of a token (Equation 3.5), clamped at 0,
    /// over the frozen `N` and `df`.
    pub fn rsj_weight(&self, token: TokenId) -> f64 {
        let n = self.stats.n as f64;
        let nt = self.df(token) as f64;
        ((n - nt + 0.5) / (nt + 0.5)).ln().max(0.0)
    }

    /// Tokenize a query string against the corpus dictionary.
    pub fn tokenize_query(&self, query: &str) -> QueryTokens {
        let grams = qgrams(query, self.config);
        let mut tokens: Vec<(TokenId, u32)> = Vec::new();
        let mut unknown_occurrences = 0u32;
        let mut unknown: std::collections::HashSet<&str> = Default::default();
        for gram in &grams {
            match self.dict.get(gram) {
                Some(id) => match tokens.binary_search_by_key(&id, |(t, _)| *t) {
                    Ok(pos) => tokens[pos].1 += 1,
                    Err(pos) => tokens.insert(pos, (id, 1)),
                },
                None => {
                    unknown_occurrences += 1;
                    unknown.insert(gram.as_str());
                }
            }
        }
        QueryTokens { tokens, unknown_occurrences, unknown_distinct: unknown.len() as u32 }
    }

    /// Word-tokenize a query string. Returns `(known word ids in order,
    /// unknown word strings in order)`.
    pub fn tokenize_query_words(&self, query: &str) -> (Vec<TokenId>, Vec<String>) {
        let mut known = Vec::new();
        let mut unknown = Vec::new();
        for w in word_tokens(query) {
            match self.word_dict.get(&w) {
                Some(id) => known.push(id),
                None => unknown.push(w),
            }
        }
        (known, unknown)
    }

    /// Histogram of q-gram IDF values with `bins` equal-width buckets between
    /// the minimum and maximum IDF (Figure 5.6 of the paper).
    pub fn idf_histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0);
        let idfs: Vec<f64> = (0..self.dict.len()).map(|i| self.idf(i as TokenId)).collect();
        if idfs.is_empty() {
            return Vec::new();
        }
        let min = idfs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = idfs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = if max > min { (max - min) / bins as f64 } else { 1.0 };
        let mut hist = vec![0usize; bins];
        for &v in &idfs {
            let mut bucket = ((v - min) / width) as usize;
            if bucket >= bins {
                bucket = bins - 1;
            }
            hist[bucket] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, count)| (min + (i as f64 + 0.5) * width, count))
            .collect()
    }

    /// Histogram of q-gram IDF values weighted by collection frequency: each
    /// bucket counts token *occurrences* rather than distinct tokens. This is
    /// the view in which frequent (low-IDF) grams dominate, matching the
    /// paper's Figure 5.6 observation that pruning a low-IDF band removes a
    /// large fraction of the token table.
    pub fn idf_occurrence_histogram(&self, bins: usize) -> Vec<(f64, u64)> {
        assert!(bins > 0);
        if self.dict.is_empty() {
            return Vec::new();
        }
        let (min, max) = self.idf_range();
        let width = if max > min { (max - min) / bins as f64 } else { 1.0 };
        let mut hist = vec![0u64; bins];
        for t in 0..self.dict.len() {
            let v = self.idf(t as TokenId);
            let mut bucket = ((v - min) / width) as usize;
            if bucket >= bins {
                bucket = bins - 1;
            }
            hist[bucket] += self.cf(t as TokenId);
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, count)| (min + (i as f64 + 0.5) * width, count))
            .collect()
    }

    /// Produce a copy of this tokenized corpus in which only the q-gram
    /// tokens accepted by `keep` remain. Per-record token lists, `dl`, `cs`,
    /// `df` and `cf` are recomputed over the surviving tokens; dropped tokens
    /// keep their dictionary ids (so query tokenization still resolves them)
    /// but have `df = cf = 0` and therefore never join. Word-level state is
    /// untouched. This is the mechanism behind the IDF-based pruning of §5.6.
    pub fn retain_tokens<F: Fn(TokenId) -> bool>(&self, keep: F) -> TokenizedCorpus {
        let mut out = self.clone();
        let mut df = vec![0u32; self.stats.df.len()];
        let mut cf = vec![0u64; self.stats.cf.len()];
        let mut pml_sum = vec![0.0f64; self.stats.pml_sum.len()];
        let mut cs = 0u64;
        for (idx, tokens) in self.rec_tokens.iter().enumerate() {
            let kept: Vec<(TokenId, u32)> =
                tokens.iter().copied().filter(|&(t, _)| keep(t)).collect();
            let dl: u32 = kept.iter().map(|&(_, tf)| tf).sum();
            for &(t, tf) in &kept {
                df[t as usize] += 1;
                cf[t as usize] += tf as u64;
                pml_sum[t as usize] += tf as f64 / (dl as f64).max(1.0);
            }
            cs += dl as u64;
            out.rec_tokens[idx] = kept;
            out.rec_dl[idx] = dl;
        }
        let n = self.stats.n;
        let avgdl = if n == 0 { 0.0 } else { cs as f64 / n as f64 };
        out.stats = Arc::new(CorpusStats {
            n,
            df,
            cf,
            cs,
            avgdl,
            pml_sum,
            word_df: self.stats.word_df.clone(),
        });
        out
    }

    /// Minimum and maximum token IDF (used by the pruning threshold of §5.6).
    pub fn idf_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..self.dict.len() {
            let v = self.idf(i as TokenId);
            min = min.min(v);
            max = max.max(v);
        }
        if self.dict.is_empty() {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> TokenizedCorpus {
        let corpus = Corpus::from_strings(vec![
            "Morgan Stanley Group Inc.",
            "Morgan Stanley Group Incorporated",
            "Beijing Hotel",
            "Beijing Labs",
            "AT&T Inc.",
        ]);
        TokenizedCorpus::build(corpus, QgramConfig::new(2))
    }

    #[test]
    fn corpus_statistics() {
        let c = Corpus::from_strings(vec!["ab cd", "xyz"]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.get(0).unwrap().text, "ab cd");
        assert_eq!(c.get(5), None);
        assert!((c.avg_string_len() - 4.0).abs() < 1e-12);
        assert!((c.avg_words_per_tuple() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tokenization_counts_are_consistent() {
        let tc = small_corpus();
        assert_eq!(tc.num_records(), 5);
        // cs equals the sum of record lengths.
        let total: u64 = (0..tc.num_records()).map(|i| tc.record_dl(i) as u64).sum();
        assert_eq!(tc.cs(), total);
        assert!((tc.avgdl() - total as f64 / 5.0).abs() < 1e-12);
        // cf of each token sums to cs.
        let cf_total: u64 = (0..tc.num_tokens()).map(|i| tc.cf(i as TokenId)).sum();
        assert_eq!(cf_total, tc.cs());
        // df never exceeds N and is at least 1 for every interned token.
        for t in 0..tc.num_tokens() {
            let df = tc.df(t as TokenId);
            assert!(df >= 1 && df as usize <= tc.num_records());
        }
    }

    #[test]
    fn record_tf_sums_to_dl() {
        let tc = small_corpus();
        for i in 0..tc.num_records() {
            let sum: u32 = tc.record_tokens(i).iter().map(|(_, tf)| tf).sum();
            assert_eq!(sum, tc.record_dl(i));
        }
    }

    #[test]
    fn idf_orders_rare_above_frequent() {
        let tc = small_corpus();
        // "MORGAN" bigrams appear in 2 records, "BEIJING" bigrams in 2,
        // the "$I"-ish grams of Inc appear in several; a gram unique to AT&T
        // should have the maximal idf.
        let unique = tc.dict().get("T&").expect("gram from AT&T");
        let common = tc.dict().get("$I").expect("word-initial I gram");
        assert!(tc.idf(unique) > tc.idf(common));
        assert!(tc.rsj_weight(unique) >= tc.rsj_weight(common));
    }

    #[test]
    fn query_tokenization_matches_dictionary() {
        let tc = small_corpus();
        let q = tc.tokenize_query("Morgan Stanley Group Inc.");
        assert!(q.unknown_occurrences == 0);
        assert!(q.tokens.len() > 5);
        let q2 = tc.tokenize_query("zzzzqqqq");
        assert!(q2.unknown_occurrences > 0);
        assert!(q2.distinct_count() >= q2.unknown_distinct);
        // Total occurrences equals the number of generated grams.
        let grams = dasp_text::qgrams("zzzzqqqq", tc.config());
        assert_eq!(q2.total_occurrences() as usize, grams.len());
    }

    #[test]
    fn word_tokenization_and_idf() {
        let tc = small_corpus();
        let (known, unknown) = tc.tokenize_query_words("Morgan Stanley Widgets");
        assert_eq!(known.len(), 2);
        assert_eq!(unknown, vec!["WIDGETS".to_string()]);
        let morgan = tc.word_dict().get("MORGAN").unwrap();
        let beijing = tc.word_dict().get("BEIJING").unwrap();
        assert_eq!(tc.word_df(morgan), 2);
        assert_eq!(tc.word_df(beijing), 2);
        assert!(tc.avg_word_idf() > 0.0);
        // Word q-gram sets are non-empty and padded.
        assert!(!tc.word_qgram_set(morgan).is_empty());
        assert!(tc.word_qgram_set(morgan).iter().any(|g| g.starts_with('$')));
    }

    #[test]
    fn idf_histogram_covers_all_tokens() {
        let tc = small_corpus();
        let hist = tc.idf_histogram(10);
        assert_eq!(hist.len(), 10);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, tc.num_tokens());
        let (lo, hi) = tc.idf_range();
        assert!(lo <= hi);
    }

    #[test]
    fn idf_occurrence_histogram_covers_all_occurrences() {
        let tc = small_corpus();
        let hist = tc.idf_occurrence_histogram(8);
        assert_eq!(hist.len(), 8);
        let total: u64 = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, tc.cs());
        // Bucket centers are increasing.
        for w in hist.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(TokenizedCorpus::build(Corpus::default(), QgramConfig::default())
            .idf_occurrence_histogram(4)
            .is_empty());
    }

    #[test]
    fn empty_corpus_is_handled() {
        let tc = TokenizedCorpus::build(Corpus::default(), QgramConfig::default());
        assert_eq!(tc.num_records(), 0);
        assert_eq!(tc.num_tokens(), 0);
        assert_eq!(tc.avgdl(), 0.0);
        assert_eq!(tc.idf_range(), (0.0, 0.0));
        let q = tc.tokenize_query("anything");
        assert!(q.tokens.is_empty());
        assert!(q.unknown_occurrences > 0);
    }
}
