//! A named collection of tables (the "database" the plans run against).

use crate::error::{RelqError, Result};
use crate::table::Table;
use std::collections::BTreeMap;

/// Catalog of named, materialized tables.
///
/// Predicate preprocessing registers token/weight tables here (the analogue
/// of the paper's `BASE_TOKENS`, `BASE_WEIGHTS`, ... relations); query-time
/// plans scan them by name.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under a name.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Remove a table, returning it if present.
    pub fn deregister(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| RelqError::UnknownTable(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of rows across all registered tables (used to report
    /// preprocessing space, analogous to the paper's intermediate-table count).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.num_rows()).sum()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn small_table(rows: usize) -> Table {
        let mut t = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        for i in 0..rows {
            t.push_row(vec![(i as i64).into()]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("a", small_table(3));
        c.register("b", small_table(2));
        assert_eq!(c.len(), 2);
        assert!(c.contains("a"));
        assert_eq!(c.get("a").unwrap().num_rows(), 3);
        assert!(c.get("zzz").is_err());
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.total_rows(), 5);
    }

    #[test]
    fn replace_and_deregister() {
        let mut c = Catalog::new();
        c.register("a", small_table(3));
        c.register("a", small_table(7));
        assert_eq!(c.get("a").unwrap().num_rows(), 7);
        let removed = c.deregister("a").unwrap();
        assert_eq!(removed.num_rows(), 7);
        assert!(!c.contains("a"));
        assert!(c.deregister("a").is_none());
    }
}
