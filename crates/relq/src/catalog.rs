//! A named collection of tables (the "database" the plans run against), with
//! optional persistent inverted indexes.
//!
//! ## The indexed-catalog contract
//!
//! Tables are stored as `Arc<Table>`: [`Plan::Scan`](crate::Plan::Scan) hands
//! out a shared handle, so scanning never copies rows. Registration is the
//! *only* time a table's rows are walked — [`Catalog::register_indexed`]
//! builds a persistent [`TableIndex`] (key values → row ids) right then,
//! which is the preprocessing-time analogue of the paper's clustered index on
//! the token/weight relations. At query time
//! [`Plan::IndexJoin`](crate::Plan::IndexJoin) probes that index, so a lookup
//! costs O(matching rows) instead of O(table) — the base relation is never
//! re-hashed or re-scanned per query.

use crate::error::{RelqError, Result};
use crate::posting::PostingIndex;
use crate::table::Table;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A persistent inverted index over one or more key columns of a table: maps
/// each distinct non-NULL key to the ids of the rows carrying it, in table
/// order (so index probes enumerate matches exactly as a hash join built on
/// the full table would).
#[derive(Debug, Clone)]
pub struct TableIndex {
    key_cols: Vec<String>,
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl TableIndex {
    fn build(table: &Table, key_cols: &[String]) -> Result<Self> {
        if key_cols.is_empty() {
            return Err(RelqError::InvalidPlan(
                "an index needs at least one key column".to_string(),
            ));
        }
        let key_idx: Vec<usize> =
            key_cols.iter().map(|c| table.schema().index_of(c)).collect::<Result<_>>()?;
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (row_no, row) in table.rows().iter().enumerate() {
            let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // SQL equality never matches NULL keys.
            }
            map.entry(key).or_default().push(row_no as u32);
        }
        Ok(TableIndex { key_cols: key_cols.to_vec(), map })
    }

    /// The indexed key columns, in key order.
    pub fn key_cols(&self) -> &[String] {
        &self.key_cols
    }

    /// Row ids whose key equals `key`, in table order.
    pub fn lookup(&self, key: &[Value]) -> Option<&[u32]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

/// Per-column `(min, max)` ranges of the Int columns of an indexed table.
/// Computed once at registration; `None` for non-Int columns, for columns
/// containing no Int values, and for columns holding unexpected value types.
/// The fused index-join aggregation uses these to switch from hash-based to
/// dense-array group lookup when a GROUP BY key has a compact Int range.
fn int_column_stats(table: &Table) -> Vec<Option<(i64, i64)>> {
    table
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(i, field)| {
            if field.dtype != crate::value::DataType::Int {
                return None;
            }
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            let mut any = false;
            for row in table.rows() {
                match &row[i] {
                    Value::Int(v) => {
                        any = true;
                        min = min.min(*v);
                        max = max.max(*v);
                    }
                    Value::Null => {}
                    _ => return None,
                }
            }
            any.then_some((min, max))
        })
        .collect()
}

/// Catalog of named, materialized tables stored behind `Arc` plus their
/// persistent indexes and registration-time column statistics.
///
/// Tables *and* indexes live behind `Arc`, so `Catalog::clone` is cheap and
/// shares both: the predicate engine clones one shared base catalog per
/// predicate and registers only predicate-specific tables on top, without
/// ever duplicating phase-1 tables or rebuilding their indexes.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    indexes: BTreeMap<String, Vec<Arc<TableIndex>>>,
    int_stats: BTreeMap<String, Vec<Option<(i64, i64)>>>,
    /// Score-ordered posting lists (see [`PostingIndex`]), the registration
    /// artifact behind [`Plan::TopKBounded`](crate::Plan::TopKBounded).
    postings: BTreeMap<String, Arc<PostingIndex>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under a name. The table is stored behind
    /// `Arc`, so scans share it without copying rows. Replacing a table drops
    /// any indexes built for the previous registration.
    pub fn register(&mut self, name: &str, table: impl Into<Arc<Table>>) {
        self.indexes.remove(name);
        self.int_stats.remove(name);
        self.postings.remove(name);
        self.tables.insert(name.to_string(), table.into());
    }

    /// Register a table and build a persistent index over `key_cols` in the
    /// same step (preprocessing-time work; query-time `IndexJoin`s probe it).
    /// Int-column min/max statistics are collected in the same pass so the
    /// executor can use dense group lookups. Fails if a key column does not
    /// exist in the table's schema.
    pub fn register_indexed(
        &mut self,
        name: &str,
        table: impl Into<Arc<Table>>,
        key_cols: &[&str],
    ) -> Result<()> {
        let table = table.into();
        let cols: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
        let index = TableIndex::build(&table, &cols)?;
        self.indexes.remove(name);
        self.postings.remove(name);
        self.indexes.insert(name.to_string(), vec![Arc::new(index)]);
        self.int_stats.insert(name.to_string(), int_column_stats(&table));
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Additionally build score-ordered posting lists over an already
    /// registered table (`weight_col: None` = unit contributions): the
    /// registration-time artifact [`Plan::TopKBounded`](crate::Plan::TopKBounded)
    /// traverses. No-op when the table already carries a posting index.
    /// Uses the default block-max granularity
    /// ([`DEFAULT_POSTING_BLOCK`](crate::DEFAULT_POSTING_BLOCK)); see
    /// [`register_posting_with_block`](Self::register_posting_with_block).
    pub fn register_posting(
        &mut self,
        name: &str,
        token_col: &str,
        tid_col: &str,
        weight_col: Option<&str>,
    ) -> Result<()> {
        self.register_posting_with_block(
            name,
            token_col,
            tid_col,
            weight_col,
            crate::posting::DEFAULT_POSTING_BLOCK,
        )
    }

    /// [`register_posting`](Self::register_posting) with an explicit
    /// block-max granularity (see
    /// [`PostingIndex::build_with_block_size`]). No-op when the table
    /// already carries a posting index built at `block_size`; an existing
    /// index at a *different* block size is rebuilt.
    pub fn register_posting_with_block(
        &mut self,
        name: &str,
        token_col: &str,
        tid_col: &str,
        weight_col: Option<&str>,
        block_size: usize,
    ) -> Result<()> {
        if let Some(existing) = self.postings.get(name) {
            if existing.block_size() == block_size {
                return Ok(());
            }
        }
        let table = self.get_shared(name)?;
        let posting = PostingIndex::build_with_block_size(
            &table, token_col, tid_col, weight_col, block_size,
        )?;
        self.postings.insert(name.to_string(), Arc::new(posting));
        Ok(())
    }

    /// Attach an already built (shared) posting index to a registered table —
    /// the lazy-shared-artifact path: one engine builds the index once and
    /// every predicate catalog aliases it.
    pub fn attach_posting(&mut self, name: &str, posting: Arc<PostingIndex>) -> Result<()> {
        if !self.tables.contains_key(name) {
            return Err(RelqError::UnknownTable(name.to_string()));
        }
        self.postings.insert(name.to_string(), posting);
        Ok(())
    }

    /// The posting index of a table, if one was registered or attached.
    pub fn posting_for(&self, name: &str) -> Option<&Arc<PostingIndex>> {
        self.postings.get(name)
    }

    /// Copy every registration of `other` into this catalog (shared `Arc`
    /// handles — tables, indexes, statistics and postings are aliased, never
    /// rebuilt). Entries in `other` replace same-named entries here. This is
    /// how the engine layer composes per-artifact mini-catalogs into the
    /// minimal catalog each predicate actually probes.
    pub fn merge_from(&mut self, other: &Catalog) {
        for (name, table) in &other.tables {
            self.tables.insert(name.clone(), table.clone());
            self.indexes.remove(name);
            self.int_stats.remove(name);
            self.postings.remove(name);
            if let Some(ixs) = other.indexes.get(name) {
                self.indexes.insert(name.clone(), ixs.clone());
            }
            if let Some(stats) = other.int_stats.get(name) {
                self.int_stats.insert(name.clone(), stats.clone());
            }
            if let Some(p) = other.postings.get(name) {
                self.postings.insert(name.clone(), p.clone());
            }
        }
    }

    /// Build an additional index over an already registered table (no-op when
    /// an index on exactly these key columns already exists).
    pub fn add_index(&mut self, name: &str, key_cols: &[&str]) -> Result<()> {
        let table = self.get_shared(name)?;
        let cols: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
        if self.index_for(name, &cols).is_some() {
            return Ok(());
        }
        let index = TableIndex::build(&table, &cols)?;
        self.indexes.entry(name.to_string()).or_default().push(Arc::new(index));
        Ok(())
    }

    /// Remove a table (and its indexes), returning the shared handle.
    pub fn deregister(&mut self, name: &str) -> Option<Arc<Table>> {
        self.indexes.remove(name);
        self.int_stats.remove(name);
        self.postings.remove(name);
        self.tables.remove(name)
    }

    /// The `(min, max)` range of an Int column of an indexed table, when the
    /// registration pass could determine one.
    pub fn int_column_range(&self, name: &str, col: usize) -> Option<(i64, i64)> {
        *self.int_stats.get(name)?.get(col)?
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| RelqError::UnknownTable(name.to_string()))
    }

    /// Look up a table by name, returning the shared handle (used by scans).
    pub fn get_shared(&self, name: &str) -> Result<Arc<Table>> {
        self.tables.get(name).cloned().ok_or_else(|| RelqError::UnknownTable(name.to_string()))
    }

    /// The index of `name` over exactly `key_cols`, if one was registered.
    pub fn index_for(&self, name: &str, key_cols: &[String]) -> Option<&TableIndex> {
        self.indexes.get(name)?.iter().find(|ix| ix.key_cols == key_cols).map(Arc::as_ref)
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of rows across all registered tables (used to report
    /// preprocessing space, analogous to the paper's intermediate-table count).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.num_rows()).sum()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn small_table(rows: usize) -> Table {
        let mut t = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        for i in 0..rows {
            t.push_row(vec![((i % 3) as i64).into()]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("a", small_table(3));
        c.register("b", small_table(2));
        assert_eq!(c.len(), 2);
        assert!(c.contains("a"));
        assert_eq!(c.get("a").unwrap().num_rows(), 3);
        assert!(c.get("zzz").is_err());
        assert!(c.get_shared("zzz").is_err());
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.total_rows(), 5);
    }

    #[test]
    fn replace_and_deregister() {
        let mut c = Catalog::new();
        c.register("a", small_table(3));
        c.register("a", small_table(7));
        assert_eq!(c.get("a").unwrap().num_rows(), 7);
        let removed = c.deregister("a").unwrap();
        assert_eq!(removed.num_rows(), 7);
        assert!(!c.contains("a"));
        assert!(c.deregister("a").is_none());
    }

    #[test]
    fn scans_share_storage_instead_of_cloning() {
        let mut c = Catalog::new();
        c.register("a", small_table(4));
        let s1 = c.get_shared("a").unwrap();
        let s2 = c.get_shared("a").unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "shared handles must alias the same allocation");
    }

    #[test]
    fn register_indexed_builds_a_probeable_index() {
        let mut c = Catalog::new();
        c.register_indexed("a", small_table(7), &["x"]).unwrap();
        let ix = c.index_for("a", &["x".to_string()]).expect("index exists");
        assert_eq!(ix.key_cols(), ["x".to_string()]);
        // x cycles 0,1,2 over 7 rows: key 0 -> rows {0,3,6}.
        assert_eq!(ix.lookup(&[Value::Int(0)]), Some(&[0u32, 3, 6][..]));
        assert_eq!(ix.lookup(&[Value::Int(9)]), None);
        assert_eq!(ix.num_keys(), 3);
    }

    #[test]
    fn indexing_unknown_columns_fails_and_nulls_are_skipped() {
        let mut c = Catalog::new();
        assert!(c.register_indexed("a", small_table(2), &["nope"]).is_err());
        let mut t = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        c.register_indexed("b", t, &["x"]).unwrap();
        let ix = c.index_for("b", &["x".to_string()]).unwrap();
        assert_eq!(ix.num_keys(), 1);
        assert!(ix.lookup(&[Value::Null]).is_none());
    }

    #[test]
    fn int_column_stats_are_collected_at_registration() {
        let mut t =
            Table::empty(Schema::from_pairs(&[("tid", DataType::Int), ("w", DataType::Float)]));
        t.push_row(vec![3.into(), 0.5.into()]).unwrap();
        t.push_row(vec![Value::Null, 0.25.into()]).unwrap();
        t.push_row(vec![7.into(), 0.75.into()]).unwrap();
        let mut c = Catalog::new();
        c.register_indexed("t", t, &["tid"]).unwrap();
        assert_eq!(c.int_column_range("t", 0), Some((3, 7)));
        assert_eq!(c.int_column_range("t", 1), None, "Float columns have no Int stats");
        assert_eq!(c.int_column_range("t", 9), None);
        assert_eq!(c.int_column_range("zzz", 0), None);
        // Plain registration does not collect stats (scans don't need them).
        c.register("u", small_table(3));
        assert_eq!(c.int_column_range("u", 0), None);
    }

    #[test]
    fn cloning_a_catalog_shares_tables_and_indexes() {
        let mut base = Catalog::new();
        base.register_indexed("a", small_table(7), &["x"]).unwrap();
        let clone = base.clone();
        let t1 = base.get_shared("a").unwrap();
        let t2 = clone.get_shared("a").unwrap();
        assert!(Arc::ptr_eq(&t1, &t2), "cloned catalogs must alias table storage");
        let i1 = base.index_for("a", &["x".to_string()]).unwrap() as *const TableIndex;
        let i2 = clone.index_for("a", &["x".to_string()]).unwrap() as *const TableIndex;
        assert_eq!(i1, i2, "cloned catalogs must alias index storage");
        // Registrations in the clone never leak back into the original.
        let mut clone = clone;
        clone.register("b", small_table(1));
        assert!(clone.contains("b"));
        assert!(!base.contains("b"));
    }

    #[test]
    fn posting_registration_attachment_and_merge() {
        let mut t = Table::empty(Schema::from_pairs(&[
            ("tid", DataType::Int),
            ("token", DataType::Int),
            ("weight", DataType::Float),
        ]));
        t.push_row(vec![1.into(), 7.into(), 0.5.into()]).unwrap();
        t.push_row(vec![2.into(), 7.into(), 1.5.into()]).unwrap();
        let mut c = Catalog::new();
        c.register_indexed("w", t, &["token"]).unwrap();
        assert!(c.posting_for("w").is_none());
        c.register_posting("w", "token", "tid", Some("weight")).unwrap();
        let p = c.posting_for("w").unwrap().clone();
        assert_eq!(p.num_postings(), 2);
        // Re-registering is a no-op; the handle stays the same.
        c.register_posting("w", "token", "tid", Some("weight")).unwrap();
        assert!(Arc::ptr_eq(&p, c.posting_for("w").unwrap()));
        // merge_from aliases table, index and posting storage.
        let mut merged = Catalog::new();
        merged.merge_from(&c);
        assert!(Arc::ptr_eq(&merged.get_shared("w").unwrap(), &c.get_shared("w").unwrap()));
        assert!(Arc::ptr_eq(merged.posting_for("w").unwrap(), &p));
        assert!(merged.index_for("w", &["token".to_string()]).is_some());
        assert_eq!(merged.int_column_range("w", 0), c.int_column_range("w", 0));
        // Attaching to an unknown table fails; to a known one shares.
        let mut other = Catalog::new();
        assert!(other.attach_posting("w", p.clone()).is_err());
        other.register("w", small_table(1));
        other.attach_posting("w", p.clone()).unwrap();
        assert!(Arc::ptr_eq(other.posting_for("w").unwrap(), &p));
        // Replacing the table drops the (now stale) posting index.
        other.register("w", small_table(2));
        assert!(other.posting_for("w").is_none());
        // register_posting on a missing table errors.
        assert!(Catalog::new().register_posting("zzz", "token", "tid", None).is_err());
    }

    #[test]
    fn add_index_supports_multiple_key_sets() {
        let mut t = Table::empty(Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]));
        t.push_row(vec![1.into(), 10.into()]).unwrap();
        t.push_row(vec![1.into(), 20.into()]).unwrap();
        let mut c = Catalog::new();
        c.register_indexed("t", t, &["x"]).unwrap();
        c.add_index("t", &["x", "y"]).unwrap();
        c.add_index("t", &["x"]).unwrap(); // no-op duplicate
        assert!(c.index_for("t", &["x".to_string()]).is_some());
        let composite = c.index_for("t", &["x".to_string(), "y".to_string()]).unwrap();
        assert_eq!(composite.lookup(&[Value::Int(1), Value::Int(20)]), Some(&[1u32][..]));
        // Re-registering drops stale indexes.
        c.register("t", small_table(1));
        assert!(c.index_for("t", &["x".to_string()]).is_none());
    }
}
