//! In-memory tables: a schema plus a row store.

use crate::error::{RelqError, Result};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Row, Value};

/// A materialized relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// Create a table from a schema and pre-built rows (rows are validated).
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Create a table without validating rows. Used internally by operators
    /// that construct rows known to match the schema.
    pub(crate) fn from_parts_unchecked(schema: Schema, rows: Vec<Row>) -> Self {
        Table { schema, rows }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, checking arity and types (NULL is allowed in any column).
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(RelqError::ArityMismatch { expected: self.schema.len(), found: row.len() });
        }
        for (value, field) in row.iter().zip(self.schema.fields()) {
            if let Some(dt) = value.data_type() {
                let compatible =
                    dt == field.dtype || (field.dtype == DataType::Float && dt == DataType::Int);
                if !compatible {
                    return Err(RelqError::TypeMismatch {
                        expected: match field.dtype {
                            DataType::Int => "Int",
                            DataType::Float => "Float",
                            DataType::Str => "Str",
                        },
                        found: format!("{dt} in column {}", field.name),
                    });
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows.
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Get the value at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> Result<&Value> {
        let idx = self.schema.index_of(column)?;
        Ok(&self.rows[row][idx])
    }

    /// Extract a whole column by name.
    pub fn column(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Sort rows in place by the given column, ascending or descending.
    pub fn sort_by_column(&mut self, column: &str, descending: bool) -> Result<()> {
        let idx = self.schema.index_of(column)?;
        self.rows.sort_by(|a, b| {
            let ord = a[idx].total_cmp(&b[idx]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(())
    }

    /// Render the table as a simple aligned text grid (for examples / debug).
    pub fn to_pretty_string(&self) -> String {
        let headers: Vec<String> = self.schema.fields().iter().map(|f| f.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Fluent builder for constructing tables in tests and preprocessing code.
#[derive(Debug, Default)]
pub struct TableBuilder {
    fields: Vec<Field>,
    rows: Vec<Row>,
}

impl TableBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a column.
    pub fn column(mut self, name: &str, dtype: DataType) -> Self {
        self.fields.push(Field::new(name, dtype));
        self
    }

    /// Add a row of values.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Finish, validating every row against the declared schema.
    pub fn build(self) -> Result<Table> {
        Table::new(Schema::new(self.fields), self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_table() -> Table {
        TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .row(vec![1.into(), "ab".into()])
            .row(vec![1.into(), "bc".into()])
            .row(vec![2.into(), "ab".into()])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = token_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, "token").unwrap(), &Value::Str("ab".into()));
        assert_eq!(t.column("tid").unwrap(), vec![1.into(), 1.into(), 2.into()]);
        assert!(t.value(0, "missing").is_err());
    }

    #[test]
    fn arity_and_type_checking() {
        let mut t = Table::empty(Schema::from_pairs(&[("a", DataType::Int)]));
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(t.push_row(vec![Value::Str("x".into())]).is_err());
        assert!(t.push_row(vec![Value::Null]).is_ok());
        assert!(t.push_row(vec![Value::Int(7)]).is_ok());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn int_values_accepted_in_float_columns() {
        let mut t = Table::empty(Schema::from_pairs(&[("w", DataType::Float)]));
        assert!(t.push_row(vec![Value::Int(3)]).is_ok());
        assert!(t.push_row(vec![Value::Float(0.5)]).is_ok());
    }

    #[test]
    fn sorting_descending() {
        let mut t = token_table();
        t.sort_by_column("tid", true).unwrap();
        assert_eq!(t.value(0, "tid").unwrap(), &Value::Int(2));
    }

    #[test]
    fn pretty_print_contains_headers_and_cells() {
        let s = token_table().to_pretty_string();
        assert!(s.contains("tid"));
        assert!(s.contains("token"));
        assert!(s.contains("bc"));
    }
}
