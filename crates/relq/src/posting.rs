//! Score-ordered posting lists and the two bounded traversals they enable.
//!
//! A [`PostingIndex`] is the third registration-time artifact a catalog table
//! can carry (after the shared `Arc<Table>` storage and the equality
//! [`TableIndex`](crate::TableIndex)): for every distinct key of a token
//! column it stores the posting list of `(tid, contribution)` pairs in
//! tid order, together with the list's maximum contribution. That per-list
//! upper bound powers two early-terminating operators:
//!
//! * [`Plan::TopKBounded`](crate::Plan::TopKBounded) — a document-at-a-time
//!   max-score traversal (Turtle & Flood's refinement of WAND / Fagin's
//!   threshold algorithm) that keeps a `k`-sized heap with a *running*
//!   threshold θ and never fully scores a tid whose sum of remaining list
//!   upper bounds cannot beat θ ([`MaxScoreTraversal`]).
//! * [`Plan::ThresholdBounded`](crate::Plan::ThresholdBounded) — the same
//!   traversal with the threshold *fixed* at a caller-supplied τ from the
//!   start ([`ThresholdTraversal`]): no heap, the non-essential prefix is
//!   computed once, and the operator returns every tid whose exact score
//!   reaches τ. Strictly simpler than top-k — and, because θ never moves,
//!   free of the tie-class ambiguity at the k boundary.
//!
//! For the monotone sum-of-non-negative-contribution predicates this makes
//! both selections sublinear in the candidate count: the long, low-weight
//! lists of frequent tokens are consulted only through bounded random
//! accesses, never traversed.
//!
//! ## Exactness contract
//!
//! Bound arithmetic uses a small relative slack so floating-point summation
//! order can never prune a tid whose exact score ties or beats the bar
//! (pruning only discards a tid when its upper bound is below
//! `θ · (1 − 1e-9)`-ish, seven orders of magnitude wider than accumulated
//! rounding). Every tid that survives pruning is then re-scored in *probe
//! order* — the exact accumulation order of the materializing aggregation
//! plans. For top-k that makes emitted scores bit-identical to the heap
//! path's whenever they are distinct (only the membership of exact score
//! ties may differ); for the fixed-τ traversal the final admission test is
//! the exact `score ≥ τ` on the re-scored sum, so the result is
//! **bit-identical** to the exhaustive score-then-filter pipeline — there is
//! no tie class at a fixed τ.

use crate::error::{RelqError, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// One token's posting list: parallel `tids` (ascending) / `weights` arrays
/// plus the maximum weight, the list-level upper bound on any contribution.
#[derive(Debug, Clone)]
pub struct PostingList {
    tids: Vec<i64>,
    weights: Vec<f64>,
    max_weight: f64,
}

impl PostingList {
    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the list holds no postings (never the case for lists built
    /// from table rows, but callers constructing empty cursors rely on it).
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Tuple ids in ascending order.
    pub fn tids(&self) -> &[i64] {
        &self.tids
    }

    /// Contributions aligned with [`tids`](Self::tids).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The largest contribution in the list (the per-list upper bound).
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// Random access: the contribution of `tid`, if it appears in the list.
    pub fn weight_of(&self, tid: i64) -> Option<f64> {
        self.tids.binary_search(&tid).ok().map(|i| self.weights[i])
    }
}

/// Posting lists for every distinct key of a table's token column, built once
/// at registration time ([`Catalog::register_posting`](crate::Catalog::register_posting))
/// and traversed by [`Plan::TopKBounded`](crate::Plan::TopKBounded).
#[derive(Debug, Clone)]
pub struct PostingIndex {
    token_col: String,
    tid_col: String,
    weight_col: Option<String>,
    map: HashMap<Value, PostingList>,
}

impl PostingIndex {
    /// Build posting lists over `table`: one list per distinct non-NULL value
    /// of `token_col`, each entry pairing the row's `tid_col` (an integer)
    /// with its `weight_col` contribution (`None` = unit weight 1.0, the
    /// unweighted-overlap case). `(token, tid)` pairs must be unique — the
    /// token tables of the predicate layer are distinct-per-tuple by
    /// construction — and weights must be finite, or the per-list maxima
    /// would not be valid upper bounds.
    pub fn build(
        table: &Table,
        token_col: &str,
        tid_col: &str,
        weight_col: Option<&str>,
    ) -> Result<Self> {
        let token_idx = table.schema().index_of(token_col)?;
        let tid_idx = table.schema().index_of(tid_col)?;
        let weight_idx = weight_col.map(|c| table.schema().index_of(c)).transpose()?;
        let mut map: HashMap<Value, PostingList> = HashMap::new();
        for row in table.rows() {
            let token = &row[token_idx];
            if token.is_null() || row[tid_idx].is_null() {
                continue; // SQL equality never matches NULL keys.
            }
            let tid = row[tid_idx].as_i64()?;
            let weight = match weight_idx {
                None => 1.0,
                Some(i) => match &row[i] {
                    Value::Null => continue, // NULL contributions vanish under SUM.
                    v => v.as_f64()?,
                },
            };
            if !weight.is_finite() {
                return Err(RelqError::InvalidPlan(format!(
                    "posting weight for token {token} / tid {tid} is not finite"
                )));
            }
            let list = map.entry(token.clone()).or_insert_with(|| PostingList {
                tids: Vec::new(),
                weights: Vec::new(),
                max_weight: f64::NEG_INFINITY,
            });
            // Appended unsorted, sorted once per list below: keeps the build
            // linear even when rows arrive in arbitrary tid order.
            list.tids.push(tid);
            list.weights.push(weight);
            list.max_weight = list.max_weight.max(weight);
        }
        for (token, list) in &mut map {
            if !list.tids.windows(2).all(|w| w[0] < w[1]) {
                let mut order: Vec<usize> = (0..list.tids.len()).collect();
                order.sort_by_key(|&i| list.tids[i]);
                list.tids = order.iter().map(|&i| list.tids[i]).collect();
                list.weights = order.iter().map(|&i| list.weights[i]).collect();
            }
            if let Some(dup) = list.tids.windows(2).find(|w| w[0] == w[1]) {
                return Err(RelqError::InvalidPlan(format!(
                    "duplicate posting ({token}, {}): posting lists need distinct \
                     (token, tid) pairs",
                    dup[0]
                )));
            }
        }
        Ok(PostingIndex {
            token_col: token_col.to_string(),
            tid_col: tid_col.to_string(),
            weight_col: weight_col.map(str::to_string),
            map,
        })
    }

    /// The token column the lists are keyed on.
    pub fn token_col(&self) -> &str {
        &self.token_col
    }

    /// The tid column the postings carry.
    pub fn tid_col(&self) -> &str {
        &self.tid_col
    }

    /// The contribution column (`None` = unit weights).
    pub fn weight_col(&self) -> Option<&str> {
        self.weight_col.as_deref()
    }

    /// Number of distinct tokens with a posting list.
    pub fn num_tokens(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings across all lists.
    pub fn num_postings(&self) -> usize {
        self.map.values().map(PostingList::len).sum()
    }

    /// The posting list of one token key.
    pub fn list(&self, token: &Value) -> Option<&PostingList> {
        self.map.get(token)
    }
}

/// One query-side probe of a posting list: the list, the non-negative
/// query-side factor its contributions are scaled by, and the probe row the
/// factor came from (the canonical re-scoring order).
struct ProbedList<'a> {
    list: &'a PostingList,
    factor: f64,
    /// Upper bound of this list's scaled contribution (`factor * max_weight`;
    /// exact — float multiplication by a non-negative factor is monotone).
    bound: f64,
    /// Cursor into the list during document-at-a-time traversal.
    pos: usize,
    /// Position of this probe in the original probe order (exact re-scoring
    /// accumulates contributions in this order).
    canon: usize,
}

/// Result ordering: descending score (ties by ascending tid), the one
/// canonical ranking order of the predicate layer.
fn ranks_before(score: f64, tid: i64, than_score: f64, than_tid: i64) -> bool {
    match score.total_cmp(&than_score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => tid < than_tid,
    }
}

/// `bound` cannot reach `theta` even granting a generous rounding margin.
/// The slack is relative (`1e-9`) — seven orders of magnitude above the
/// worst accumulated ulp error of these short sums — so pruning can never
/// discard a tid whose exactly-computed score ties or beats θ.
fn hopeless(bound: f64, theta: f64) -> bool {
    bound < theta - 1e-9 * (theta.abs() + bound.abs() + 1.0)
}

/// The exact `score ≥ τ` admission test of the fixed-τ traversal, with the
/// same NaN semantics as the relational filter it replaces: `Filter`
/// comparisons go through [`Value::total_cmp`], under which NaN compares
/// equal to everything — so a NaN τ admits every candidate (and pruning,
/// whose arithmetic propagates NaN into `false` comparisons, never fires).
/// Scores themselves are finite sums of finite non-negative products and
/// cannot be NaN.
pub(crate) fn admits(score: f64, tau: f64) -> bool {
    !matches!(score.partial_cmp(&tau), Some(std::cmp::Ordering::Less))
}

/// The machinery both bounded traversals share: the probed lists sorted by
/// ascending upper bound (ties: longer lists first, so the largest traversal
/// volume becomes skippable soonest), the canonical probe-order permutation
/// for exact re-scoring, prefix bound sums, and the document-at-a-time
/// candidate enumeration with its bounded prefix descent. Keeping this in
/// one place is what keeps the two operators' bound arithmetic — and
/// therefore their exactness contracts — provably identical.
struct ProbedLists<'a> {
    lists: Vec<ProbedList<'a>>,
    /// Internal list indices in original probe order (canonical re-scoring).
    by_canon: Vec<usize>,
    /// `prefix_bound[i]` = Σ bounds of `lists[0..=i]`.
    prefix_bound: Vec<f64>,
}

impl<'a> ProbedLists<'a> {
    /// `probes` pairs each probed posting list with its query-side factor,
    /// in probe order (the canonical accumulation order). Factors must be
    /// non-negative and finite: a negative factor would invert a list's
    /// ordering and break the upper-bound argument. `op` names the plan
    /// operator in the rejection message.
    fn new(probes: Vec<(&'a PostingList, f64)>, op: &str) -> Result<Self> {
        let mut lists = Vec::with_capacity(probes.len());
        for (canon, (list, factor)) in probes.into_iter().enumerate() {
            if !(factor >= 0.0 && factor.is_finite()) {
                return Err(RelqError::InvalidPlan(format!(
                    "{op} requires finite non-negative query factors, got {factor}"
                )));
            }
            lists.push(ProbedList {
                list,
                factor,
                bound: factor * list.max_weight(),
                pos: 0,
                canon,
            });
        }
        // Ascending bound; equal bounds put the longer list first so it turns
        // non-essential (skippable) earlier.
        lists.sort_by(|a, b| {
            a.bound.total_cmp(&b.bound).then_with(|| b.list.len().cmp(&a.list.len()))
        });
        let mut by_canon: Vec<usize> = (0..lists.len()).collect();
        by_canon.sort_by_key(|&i| lists[i].canon);
        let mut prefix_bound = Vec::with_capacity(lists.len());
        let mut sum = 0.0;
        for l in &lists {
            sum += l.bound;
            prefix_bound.push(sum);
        }
        Ok(ProbedLists { lists, by_canon, prefix_bound })
    }

    fn len(&self) -> usize {
        self.lists.len()
    }

    /// Exact score of `tid`, accumulated in probe order — the same order the
    /// materializing aggregation pipeline sums contributions in, so emitted
    /// scores are bit-identical to the exhaustive paths'.
    fn exact_score(&self, tid: i64) -> f64 {
        let mut score = 0.0;
        for &i in &self.by_canon {
            let l = &self.lists[i];
            if let Some(w) = l.list.weight_of(tid) {
                score += l.factor * w;
            }
        }
        score
    }

    /// Next candidate from the essential suffix: the smallest un-visited tid
    /// across `lists[first_essential..]` together with its partial score from
    /// those lists (their cursors advanced past it), or `None` when every
    /// essential cursor is exhausted.
    fn next_candidate(&mut self, first_essential: usize) -> Option<(i64, f64)> {
        let mut tid = i64::MAX;
        for l in &self.lists[first_essential..] {
            if let Some(&t) = l.list.tids().get(l.pos) {
                tid = tid.min(t);
            }
        }
        if tid == i64::MAX {
            return None;
        }
        let mut partial = 0.0;
        for l in &mut self.lists[first_essential..] {
            if l.list.tids().get(l.pos) == Some(&tid) {
                partial += l.factor * l.list.weights()[l.pos];
                l.pos += 1;
            }
        }
        Some((tid, partial))
    }

    /// Descend through the non-essential prefix for `tid`, highest bound
    /// first, adding its contributions to `partial` — abandoning with `None`
    /// as soon as the remaining upper bounds cannot lift the partial score
    /// past `bar` (with the [`hopeless`] slack, so no qualifying tid is ever
    /// abandoned).
    fn descend_prefix(
        &self,
        tid: i64,
        mut partial: f64,
        first_essential: usize,
        bar: f64,
    ) -> Option<f64> {
        for i in (0..first_essential).rev() {
            if hopeless(partial + self.prefix_bound[i], bar) {
                return None;
            }
            if let Some(w) = self.lists[i].list.weight_of(tid) {
                partial += self.lists[i].factor * w;
            }
        }
        Some(partial)
    }
}

/// The document-at-a-time max-score traversal behind
/// [`Plan::TopKBounded`](crate::Plan::TopKBounded).
///
/// A growing prefix of "non-essential" lists — those whose bounds sum below
/// the current threshold θ (the k-th best exact score so far) — is excluded
/// from candidate generation: a tid appearing only there cannot reach the
/// heap, and tids from the essential suffix consult the non-essential prefix
/// via bounded random accesses that abandon as soon as the remaining upper
/// bounds cannot lift the partial score past θ (see [`ProbedLists`]).
pub(crate) struct MaxScoreTraversal<'a> {
    probed: ProbedLists<'a>,
    /// `lists[0..first_essential]` are non-essential under the current θ.
    first_essential: usize,
    k: usize,
    /// The `k` best `(score, tid)` seen so far, worst first (max-heap under
    /// "ranks last"); θ is the score of `heap[0]` once full.
    heap: Vec<(f64, i64)>,
}

impl<'a> MaxScoreTraversal<'a> {
    /// Wrap the probes (see [`ProbedLists::new`]) for a top-`k` selection.
    pub(crate) fn new(probes: Vec<(&'a PostingList, f64)>, k: usize) -> Result<Self> {
        Ok(MaxScoreTraversal {
            probed: ProbedLists::new(probes, "TopKBounded")?,
            first_essential: 0,
            k,
            heap: Vec::new(),
        })
    }

    /// θ: the k-th best exact score, or −∞ until the heap is full.
    fn theta(&self) -> f64 {
        if self.heap.len() == self.k {
            self.heap.first().map(|&(s, _)| s).unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// `a` ranks strictly after `b` — i.e. `a` is the worse entry.
    fn is_worse(a: &(f64, i64), b: &(f64, i64)) -> bool {
        ranks_before(b.0, b.1, a.0, a.1)
    }

    /// Restore the "worst entry at the root" invariant downward from `i`.
    fn sift_down(heap: &mut [(f64, i64)], mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < heap.len() && Self::is_worse(&heap[l], &heap[worst]) {
                worst = l;
            }
            if r < heap.len() && Self::is_worse(&heap[r], &heap[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            heap.swap(i, worst);
            i = worst;
        }
    }

    fn push_heap(&mut self, score: f64, tid: i64) {
        if self.heap.len() < self.k {
            self.heap.push((score, tid));
            // Sift up under "worst at the root".
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if Self::is_worse(&self.heap[i], &self.heap[parent]) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if ranks_before(score, tid, self.heap[0].0, self.heap[0].1) {
            self.heap[0] = (score, tid);
            Self::sift_down(&mut self.heap, 0);
        }
    }

    /// Run the traversal, returning `(tid, score)` in ranking order.
    pub(crate) fn run(mut self) -> Vec<(i64, f64)> {
        if self.k == 0 || self.probed.len() == 0 {
            return Vec::new();
        }
        loop {
            let theta = self.theta();
            // Grow the non-essential prefix: lists[0..first_essential] alone
            // can no longer produce a heap entry.
            while self.first_essential < self.probed.len()
                && hopeless(self.probed.prefix_bound[self.first_essential], theta)
            {
                self.first_essential += 1;
            }
            if self.first_essential == self.probed.len() {
                break; // Even the sum of all remaining bounds is below θ.
            }
            let Some((tid, partial)) = self.probed.next_candidate(self.first_essential) else {
                break; // All essential cursors exhausted.
            };
            let Some(partial) =
                self.probed.descend_prefix(tid, partial, self.first_essential, theta)
            else {
                continue; // Abandoned mid-descent: cannot reach θ.
            };
            if self.heap.len() == self.k && hopeless(partial, theta) {
                continue;
            }
            // Survivor: re-score exactly in probe order before admission.
            let exact = self.probed.exact_score(tid);
            self.push_heap(exact, tid);
        }
        // Drain the max-heap worst-first, then reverse into ranking order.
        let mut out = Vec::with_capacity(self.heap.len());
        while !self.heap.is_empty() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            let (score, tid) = self.heap.pop().expect("non-empty");
            out.push((tid, score));
            Self::sift_down(&mut self.heap, 0);
        }
        out.reverse();
        out
    }
}

/// The document-at-a-time max-score traversal behind
/// [`Plan::ThresholdBounded`](crate::Plan::ThresholdBounded): the threshold
/// selection "return every tid with `score ≥ τ`" over the same posting
/// lists [`MaxScoreTraversal`] uses for top-k.
///
/// The bar is **fixed** at τ from the start, which simplifies everything the
/// top-k traversal has to maintain dynamically: there is no heap, and the
/// non-essential prefix — the lists whose summed upper bounds cannot reach
/// τ — is computed once before the descent instead of growing as θ rises. A
/// tid appearing only in non-essential lists can never reach τ and is never
/// visited; tids from the essential suffix consult the prefix through the
/// same highest-bound-first random accesses with early abandon.
///
/// ## Exactness
///
/// Pruning carries the shared relative slack (see [`hopeless`]), so no tid
/// whose exact score ties or beats τ is ever discarded; every survivor is
/// re-scored in probe order and admitted by the **exact** `score ≥ τ` test
/// ([`admits`], no slack). The emitted `(tid, score)` set is therefore
/// bit-identical — tids and score bits — to exhaustively scoring every
/// candidate in probe-major order and filtering, which is exactly what the
/// naive lowering does. Results are in ranking order (score descending,
/// ties by ascending tid).
///
/// A non-finite τ behaves like the exhaustive filter too: `τ = −∞` disables
/// pruning and admits every candidate, `τ = +∞` short-circuits to empty (no
/// finite score reaches it), and `τ = NaN` admits every candidate — the
/// relational comparator treats NaN as equal to everything (see [`admits`]).
pub(crate) struct ThresholdTraversal<'a> {
    probed: ProbedLists<'a>,
    /// The fixed selection bar τ.
    tau: f64,
}

impl<'a> ThresholdTraversal<'a> {
    /// Wrap the probes (see [`ProbedLists::new`]) for a selection at `tau`.
    pub(crate) fn new(probes: Vec<(&'a PostingList, f64)>, tau: f64) -> Result<Self> {
        Ok(ThresholdTraversal { probed: ProbedLists::new(probes, "ThresholdBounded")?, tau })
    }

    /// Run the traversal, returning every `(tid, score)` with `score ≥ τ` in
    /// ranking order.
    pub(crate) fn run(mut self) -> Vec<(i64, f64)> {
        let tau = self.tau;
        // τ = +∞: no finite score qualifies, and the prefix/pruning
        // arithmetic degenerates (∞ − ∞ = NaN compares false, disabling
        // pruning) — short-circuit instead of scoring every candidate only
        // to reject it.
        if self.probed.len() == 0 || tau == f64::INFINITY {
            return Vec::new();
        }
        // The non-essential prefix under the fixed bar: computed once — τ
        // never moves, so unlike top-k it can never grow mid-traversal.
        let mut first_essential = 0;
        while first_essential < self.probed.len()
            && hopeless(self.probed.prefix_bound[first_essential], tau)
        {
            first_essential += 1;
        }
        let mut out: Vec<(i64, f64)> = Vec::new();
        if first_essential == self.probed.len() {
            return out; // Even the sum of all bounds is below τ.
        }
        // Candidates arrive in ascending tid order from the essential
        // cursors; each consults the non-essential prefix with early
        // abandon, exactly like the top-k traversal at a frozen θ.
        while let Some((tid, partial)) = self.probed.next_candidate(first_essential) {
            let Some(partial) = self.probed.descend_prefix(tid, partial, first_essential, tau)
            else {
                continue; // Abandoned mid-descent: cannot reach τ.
            };
            if hopeless(partial, tau) {
                continue;
            }
            // Survivor: the exact probe-order score decides admission — no
            // slack here, so the emitted set matches the exhaustive filter
            // bit for bit.
            let exact = self.probed.exact_score(tid);
            if admits(exact, tau) {
                out.push((tid, exact));
            }
        }
        // Emit in ranking order.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn weights_table(rows: &[(i64, i64, f64)]) -> Table {
        let schema = Schema::from_pairs(&[
            ("tid", DataType::Int),
            ("token", DataType::Int),
            ("weight", DataType::Float),
        ]);
        let mut t = Table::empty(schema);
        for &(tid, token, w) in rows {
            t.push_row(vec![Value::Int(tid), Value::Int(token), Value::Float(w)]).unwrap();
        }
        t
    }

    #[test]
    fn build_produces_tid_sorted_lists_with_max() {
        let t = weights_table(&[(3, 7, 0.5), (1, 7, 0.25), (2, 9, 1.5), (1, 9, 0.75)]);
        let ix = PostingIndex::build(&t, "token", "tid", Some("weight")).unwrap();
        assert_eq!(ix.num_tokens(), 2);
        assert_eq!(ix.num_postings(), 4);
        let l7 = ix.list(&Value::Int(7)).unwrap();
        assert_eq!(l7.tids(), &[1, 3]);
        assert_eq!(l7.weights(), &[0.25, 0.5]);
        assert_eq!(l7.max_weight(), 0.5);
        assert_eq!(l7.weight_of(3), Some(0.5));
        assert_eq!(l7.weight_of(99), None);
        assert!(ix.list(&Value::Int(42)).is_none());
    }

    #[test]
    fn unit_weight_lists_and_null_rows() {
        let schema = Schema::from_pairs(&[("tid", DataType::Int), ("token", DataType::Int)]);
        let mut t = Table::empty(schema);
        t.push_row(vec![Value::Int(1), Value::Int(5)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        t.push_row(vec![Value::Null, Value::Int(5)]).unwrap();
        let ix = PostingIndex::build(&t, "token", "tid", None).unwrap();
        assert_eq!(ix.num_postings(), 1);
        assert_eq!(ix.list(&Value::Int(5)).unwrap().max_weight(), 1.0);
    }

    #[test]
    fn non_finite_weights_and_duplicates_are_rejected() {
        let t = weights_table(&[(1, 7, f64::INFINITY)]);
        assert!(PostingIndex::build(&t, "token", "tid", Some("weight")).is_err());
        let t = weights_table(&[(1, 7, 0.5), (1, 7, 0.25)]);
        assert!(PostingIndex::build(&t, "token", "tid", Some("weight")).is_err());
        let t = weights_table(&[]);
        assert!(PostingIndex::build(&t, "nope", "tid", Some("weight")).is_err());
    }

    /// Exhaustive reference scorer in probe order.
    fn reference_top_k(ix: &PostingIndex, probes: &[(i64, f64)], k: usize) -> Vec<(i64, f64)> {
        let mut order: Vec<i64> = Vec::new();
        let mut scores: HashMap<i64, f64> = HashMap::new();
        for &(token, factor) in probes {
            if let Some(list) = ix.list(&Value::Int(token)) {
                for (i, &tid) in list.tids().iter().enumerate() {
                    let slot = scores.entry(tid).or_insert_with(|| {
                        order.push(tid);
                        0.0
                    });
                    *slot += factor * list.weights()[i];
                }
            }
        }
        let mut out: Vec<(i64, f64)> = order.into_iter().map(|t| (t, scores[&t])).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    fn run_bounded(ix: &PostingIndex, probes: &[(i64, f64)], k: usize) -> Vec<(i64, f64)> {
        let probed: Vec<(&PostingList, f64)> = probes
            .iter()
            .filter_map(|&(token, factor)| ix.list(&Value::Int(token)).map(|l| (l, factor)))
            .collect();
        MaxScoreTraversal::new(probed, k).unwrap().run()
    }

    #[test]
    fn bounded_matches_exhaustive_reference_on_random_inputs() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(1..12);
            let num_tids = g.usize_in(1..40) as i64;
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let mut tids: Vec<i64> = (0..num_tids).collect();
                let keep = g.usize_in(1..(num_tids as usize + 1));
                while tids.len() > keep {
                    let drop = g.usize_in(0..tids.len());
                    tids.remove(drop);
                }
                for tid in tids {
                    rows.push((tid, token, g.f64_in(0.0..2.0)));
                }
            }
            let table = weights_table(&rows);
            let ix = PostingIndex::build(&table, "token", "tid", Some("weight")).unwrap();
            let mut probes: Vec<(i64, f64)> = Vec::new();
            for t in 0..num_tokens as i64 {
                if g.bool_with(0.8) {
                    probes.push((t, g.f64_in(0.0..1.5)));
                }
            }
            for k in [0, 1, 3, 10, 1000] {
                let bounded = run_bounded(&ix, &probes, k);
                let exhaustive = reference_top_k(&ix, &probes, k);
                assert_eq!(
                    bounded.len(),
                    exhaustive.len(),
                    "k={k} probes={probes:?} rows={rows:?}"
                );
                // Same score multiset; identical tids wherever scores are
                // unique (random weights: ties are essentially impossible, so
                // this is equality in practice).
                for (b, e) in bounded.iter().zip(&exhaustive) {
                    assert_eq!(b.1.to_bits(), e.1.to_bits(), "score diverged at k={k}");
                }
                let mut bt: Vec<i64> = bounded.iter().map(|x| x.0).collect();
                let mut et: Vec<i64> = exhaustive.iter().map(|x| x.0).collect();
                bt.sort_unstable();
                et.sort_unstable();
                assert_eq!(bt, et, "tid set diverged at k={k}");
            }
        });
    }

    #[test]
    fn pruning_never_skips_a_tid_that_outscores_the_kth() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(2..10);
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let len = g.usize_in(1..25);
                let mut tid = 0i64;
                for _ in 0..len {
                    tid += g.int_in(1..5);
                    rows.push((tid, token, g.f64_in(0.0..1.0)));
                }
            }
            let table = weights_table(&rows);
            let ix = PostingIndex::build(&table, "token", "tid", Some("weight")).unwrap();
            let probes: Vec<(i64, f64)> =
                (0..num_tokens as i64).map(|t| (t, g.f64_in(0.0..1.0))).collect();
            let k = g.usize_in(1..8);
            let bounded = run_bounded(&ix, &probes, k);
            let all = reference_top_k(&ix, &probes, usize::MAX);
            if bounded.len() < k {
                assert_eq!(bounded.len(), all.len(), "short result must mean few candidates");
            }
            if let Some(&(_, kth)) = bounded.last() {
                let returned: std::collections::HashSet<i64> =
                    bounded.iter().map(|x| x.0).collect();
                for &(tid, score) in &all {
                    assert!(
                        returned.contains(&tid) || score <= kth,
                        "skipped tid {tid} (score {score}) outscores the k-th ({kth})"
                    );
                }
            }
        });
    }

    #[test]
    fn negative_factors_are_rejected() {
        let t = weights_table(&[(1, 7, 0.5)]);
        let ix = PostingIndex::build(&t, "token", "tid", Some("weight")).unwrap();
        let list = ix.list(&Value::Int(7)).unwrap();
        assert!(MaxScoreTraversal::new(vec![(list, -0.5)], 3).is_err());
        assert!(MaxScoreTraversal::new(vec![(list, f64::NAN)], 3).is_err());
        assert!(MaxScoreTraversal::new(vec![(list, 0.0)], 3).is_ok());
        assert!(ThresholdTraversal::new(vec![(list, -0.5)], 0.1).is_err());
        assert!(ThresholdTraversal::new(vec![(list, f64::INFINITY)], 0.1).is_err());
        assert!(ThresholdTraversal::new(vec![(list, 0.0)], 0.1).is_ok());
    }

    /// Exhaustive reference selection in probe-major accumulation order,
    /// under the relational filter's comparison semantics ([`admits`]).
    fn reference_threshold(ix: &PostingIndex, probes: &[(i64, f64)], tau: f64) -> Vec<(i64, f64)> {
        let mut all = reference_top_k(ix, probes, usize::MAX);
        all.retain(|&(_, score)| admits(score, tau));
        all
    }

    fn run_threshold(ix: &PostingIndex, probes: &[(i64, f64)], tau: f64) -> Vec<(i64, f64)> {
        let probed: Vec<(&PostingList, f64)> = probes
            .iter()
            .filter_map(|&(token, factor)| ix.list(&Value::Int(token)).map(|l| (l, factor)))
            .collect();
        ThresholdTraversal::new(probed, tau).unwrap().run()
    }

    #[test]
    fn threshold_traversal_is_bit_identical_to_exhaustive_filter() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(1..12);
            let num_tids = g.usize_in(1..40) as i64;
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let mut tids: Vec<i64> = (0..num_tids).collect();
                let keep = g.usize_in(1..(num_tids as usize + 1));
                while tids.len() > keep {
                    let drop = g.usize_in(0..tids.len());
                    tids.remove(drop);
                }
                for tid in tids {
                    rows.push((tid, token, g.f64_in(0.0..2.0)));
                }
            }
            let table = weights_table(&rows);
            let ix = PostingIndex::build(&table, "token", "tid", Some("weight")).unwrap();
            let mut probes: Vec<(i64, f64)> = Vec::new();
            for t in 0..num_tokens as i64 {
                if g.bool_with(0.8) {
                    probes.push((t, g.f64_in(0.0..1.5)));
                }
            }
            let all = reference_top_k(&ix, &probes, usize::MAX);
            // τ sweep: non-finite bars, a bar below every score, bars equal
            // to exact scores (the `>=` boundary), between-score bars and a
            // bar above the maximum.
            let mut taus = vec![f64::NEG_INFINITY, 0.0, f64::INFINITY, f64::NAN, 1e300, -1e300];
            if let (Some(&(_, hi)), Some(&(_, lo))) = (all.first(), all.last()) {
                taus.extend([lo, hi, (lo + hi) / 2.0, hi * 1.5 + 1.0, lo / 2.0]);
                if let Some(&(_, mid)) = all.get(all.len() / 2) {
                    taus.push(mid);
                    taus.push(f64::from_bits(mid.to_bits() + 1)); // next float up
                }
            }
            for tau in taus {
                let bounded = run_threshold(&ix, &probes, tau);
                let exhaustive = reference_threshold(&ix, &probes, tau);
                assert_eq!(bounded.len(), exhaustive.len(), "tau={tau} probes={probes:?}");
                for (b, e) in bounded.iter().zip(&exhaustive) {
                    assert_eq!(b.0, e.0, "tid diverged at tau={tau}");
                    assert_eq!(b.1.to_bits(), e.1.to_bits(), "score bits diverged at tau={tau}");
                }
            }
        });
    }

    #[test]
    fn threshold_traversal_never_prunes_a_qualifying_tid() {
        // Adversarial shape for the prefix computation: many light lists that
        // are individually hopeless but sum across the bar.
        // 0.125 is exactly representable, so ten of them sum to exactly 1.25.
        let mut rows = Vec::new();
        for token in 0..10i64 {
            for tid in 0..20i64 {
                rows.push((tid, token, 0.125));
            }
        }
        rows.push((3, 10, 1.0)); // one heavy list lifts tid 3
        let table = weights_table(&rows);
        let ix = PostingIndex::build(&table, "token", "tid", Some("weight")).unwrap();
        let probes: Vec<(i64, f64)> = (0..11).map(|t| (t, 1.0)).collect();
        // Every tid scores exactly 1.25 except tid 3 at 2.25.
        let selected = run_threshold(&ix, &probes, 1.25);
        assert_eq!(selected.len(), 20, "every tid reaches τ=1.25 exactly");
        assert_eq!(selected[0], (3, 2.25));
        let selected = run_threshold(&ix, &probes, 1.5);
        assert_eq!(selected, vec![(3, 2.25)]);
        let selected = run_threshold(&ix, &probes, 2.5);
        assert!(selected.is_empty());
    }
}
