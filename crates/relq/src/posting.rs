//! Score-bounded posting storage and the two bounded traversals it enables:
//! a flat struct-of-arrays posting store with per-block maxima (Block-Max
//! WAND) behind the max-score operators.
//!
//! A [`PostingIndex`] is the third registration-time artifact a catalog table
//! can carry (after the shared `Arc<Table>` storage and the equality
//! [`TableIndex`](crate::TableIndex)). Storage is **flat struct-of-arrays**:
//! one contiguous `tids` arena and one parallel `weights` arena for the whole
//! index, with each distinct key of the token column owning an
//! `(offset, len)` slice of both — no per-list allocations, and a list
//! traversal walks one dense cache line after another instead of chasing a
//! `HashMap`-of-`Vec`s. Alongside the per-list maximum contribution the build
//! records **per-block maxima**: the largest weight inside every
//! `block_size`-posting run of a list (a third arena, ~`len / block_size`
//! entries per list). Those bounds power two early-terminating operators:
//!
//! * [`Plan::TopKBounded`](crate::Plan::TopKBounded) — a document-at-a-time
//!   max-score traversal (Turtle & Flood's refinement of WAND / Fagin's
//!   threshold algorithm) that keeps a `k`-sized heap with a *running*
//!   threshold θ and never fully scores a tid whose sum of remaining list
//!   upper bounds cannot beat θ ([`MaxScoreTraversal`]).
//! * [`Plan::ThresholdBounded`](crate::Plan::ThresholdBounded) — the same
//!   traversal with the threshold *fixed* at a caller-supplied τ from the
//!   start ([`ThresholdTraversal`]): no heap, the non-essential prefix is
//!   computed once, and the operator returns every tid whose exact score
//!   reaches τ. Strictly simpler than top-k — and, because θ never moves,
//!   free of the tie-class ambiguity at the k boundary.
//!
//! ## Block-max skipping
//!
//! A per-list maximum is a *global* bound: one hot document poisons the whole
//! list, keeping it essential forever and forcing the traversal to visit
//! every candidate it emits. Per-block maxima localize the damage (the
//! standard WAND → Block-Max WAND upgrade): whenever the global-bound sum of
//! the essential lists clears the bar, the traversal re-checks against the
//! **block-level** bound sum at the current cursors — the maxima of exactly
//! the blocks any candidate below the next block boundary could draw
//! contributions from. If even that sum is hopeless, the cursors jump
//! straight to the boundary with a **galloping** (exponential-then-binary)
//! search over the dense tid arena, skipping every candidate in between
//! without scoring a single one. Skipping therefore happens *inside*
//! essential lists, where the global bound is powerless.
//!
//! For the monotone sum-of-non-negative-contribution predicates this makes
//! both selections sublinear in the candidate count: the long, low-weight
//! lists of frequent tokens are consulted only through bounded random
//! accesses (also galloping), never traversed.
//!
//! ## Exactness contract
//!
//! Block maxima are upper bounds on every weight in their block, so the
//! block-level bound sum is an upper bound on the exact score of every tid in
//! the skipped range — a skip can only discard tids that could never reach
//! the bar. Bound arithmetic additionally uses a small relative slack so
//! floating-point summation order can never prune a tid whose exact score
//! ties or beats the bar (pruning only discards a tid when its upper bound is
//! below `θ · (1 − 1e-9)`-ish, seven orders of magnitude wider than
//! accumulated rounding). Every tid that survives pruning is then re-scored
//! in *probe order* — the exact accumulation order of the materializing
//! aggregation plans. For top-k that makes emitted scores bit-identical to
//! the heap path's whenever they are distinct (only the membership of exact
//! score ties may differ); for the fixed-τ traversal the final admission test
//! is the exact `score ≥ τ` on the re-scored sum, so the result is
//! **bit-identical** to the exhaustive score-then-filter pipeline — there is
//! no tie class at a fixed τ. Both contracts hold for *every* block size,
//! including the degenerate `1` (per-posting maxima) and `≥ list length`
//! (block max = global max, i.e. plain WAND).

use crate::error::{RelqError, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Default number of postings per block-max block. 64 keeps a block's tids
/// inside one 512-byte run (a single prefetchable stretch) while making the
/// block maxima arena ~1.5 % of the posting storage; the engine layer can
/// tune it per index ([`PostingIndex::build_with_block_size`]).
pub const DEFAULT_POSTING_BLOCK: usize = 64;

/// Where one token's postings live inside the flat arenas.
#[derive(Debug, Clone, Copy)]
struct ListMeta {
    /// First posting in the `tids` / `weights` arenas.
    offset: usize,
    /// Number of postings.
    len: usize,
    /// First entry in the `block_maxes` arena (`len.div_ceil(block_size)`
    /// entries follow).
    block_offset: usize,
    /// The largest weight of the list (the global per-list upper bound).
    max_weight: f64,
}

/// A borrowed view of one token's posting list inside the flat
/// struct-of-arrays store: parallel `tids` (ascending) / `weights` slices,
/// the per-block maxima of its `block_size`-posting runs, and the list-level
/// maximum. `Copy` — cursors hold it by value, no indirection per access.
#[derive(Debug, Clone, Copy)]
pub struct PostingList<'a> {
    tids: &'a [i64],
    weights: &'a [f64],
    block_maxes: &'a [f64],
    block_size: usize,
    max_weight: f64,
}

impl<'a> PostingList<'a> {
    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the list holds no postings (never the case for lists built
    /// from table rows, but callers constructing empty cursors rely on it).
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Tuple ids in ascending order.
    pub fn tids(&self) -> &'a [i64] {
        self.tids
    }

    /// Contributions aligned with [`tids`](Self::tids).
    pub fn weights(&self) -> &'a [f64] {
        self.weights
    }

    /// The largest contribution in the list (the per-list upper bound).
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// Number of postings per block-max block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Per-block maxima: entry `b` bounds every weight in postings
    /// `[b * block_size, (b + 1) * block_size)` of this list.
    pub fn block_maxes(&self) -> &'a [f64] {
        self.block_maxes
    }

    /// Number of block-max blocks (`len.div_ceil(block_size)`).
    pub fn num_blocks(&self) -> usize {
        self.block_maxes.len()
    }

    /// The block-level upper bound at posting position `pos`: the maximum
    /// weight of the block containing `pos`.
    pub fn block_max_at(&self, pos: usize) -> f64 {
        self.block_maxes[pos / self.block_size]
    }

    /// First posting position of the block after the one containing `pos`
    /// (≥ `len` when `pos` sits in the final block). Saturating, so a
    /// degenerate `block_size` near `usize::MAX` stays well-defined.
    pub fn next_block_start(&self, pos: usize) -> usize {
        (pos / self.block_size).saturating_add(1).saturating_mul(self.block_size)
    }

    /// The first position `≥ from` whose tid is `≥ tid`, by galloping search:
    /// exponential probes from `from` bracket the target, a binary search
    /// finishes inside the bracket. O(log distance) — cheap for the short
    /// hops of block skips, never worse than a full binary search (up to a
    /// constant) for long ones.
    pub fn seek(&self, from: usize, tid: i64) -> usize {
        let tids = self.tids;
        let from = from.min(tids.len());
        if from == tids.len() || tids[from] >= tid {
            return from;
        }
        // Exponential phase: invariant tids[lo] < tid; double the step until
        // the probe overshoots (or runs off the end).
        let mut lo = from;
        let mut step = 1usize;
        let hi = loop {
            let probe = lo + step;
            if probe >= tids.len() {
                break tids.len();
            }
            if tids[probe] >= tid {
                break probe;
            }
            lo = probe;
            step <<= 1;
        };
        // Binary phase over (lo, hi): everything at or before lo is < tid.
        lo + 1 + tids[lo + 1..hi].partition_point(|&t| t < tid)
    }

    /// Random access: the contribution of `tid`, if it appears in the list
    /// (a gallop from the front of the dense tid slice).
    pub fn weight_of(&self, tid: i64) -> Option<f64> {
        let pos = self.seek(0, tid);
        (self.tids.get(pos) == Some(&tid)).then(|| self.weights[pos])
    }
}

/// Posting lists for every distinct key of a table's token column over one
/// flat struct-of-arrays store, built once at registration time
/// ([`Catalog::register_posting`](crate::Catalog::register_posting)) and
/// traversed by [`Plan::TopKBounded`](crate::Plan::TopKBounded) /
/// [`Plan::ThresholdBounded`](crate::Plan::ThresholdBounded).
#[derive(Debug, Clone)]
pub struct PostingIndex {
    token_col: String,
    tid_col: String,
    weight_col: Option<String>,
    block_size: usize,
    /// All lists' tuple ids, list after list (each list's run ascending).
    tids: Vec<i64>,
    /// Contributions aligned with `tids`.
    weights: Vec<f64>,
    /// Per-block maxima, list after list (`len.div_ceil(block_size)` entries
    /// per list).
    block_maxes: Vec<f64>,
    map: HashMap<Value, ListMeta>,
}

impl PostingIndex {
    /// Build posting lists over `table` with the default block size
    /// ([`DEFAULT_POSTING_BLOCK`]): one list per distinct non-NULL value of
    /// `token_col`, each entry pairing the row's `tid_col` (an integer) with
    /// its `weight_col` contribution (`None` = unit weight 1.0, the
    /// unweighted-overlap case). `(token, tid)` pairs must be unique — the
    /// token tables of the predicate layer are distinct-per-tuple by
    /// construction — and weights must be finite, or the per-list and
    /// per-block maxima would not be valid upper bounds.
    pub fn build(
        table: &Table,
        token_col: &str,
        tid_col: &str,
        weight_col: Option<&str>,
    ) -> Result<Self> {
        Self::build_with_block_size(table, token_col, tid_col, weight_col, DEFAULT_POSTING_BLOCK)
    }

    /// [`build`](Self::build) with an explicit block-max granularity.
    /// `block_size = 1` stores one bound per posting (tightest, largest
    /// arena); any size `≥` the longest list degenerates every block max to
    /// the list max — the plain-WAND configuration the benchmarks use as the
    /// global-max baseline. The traversals are exact at every setting; the
    /// size only moves the skip/overhead trade-off.
    pub fn build_with_block_size(
        table: &Table,
        token_col: &str,
        tid_col: &str,
        weight_col: Option<&str>,
        block_size: usize,
    ) -> Result<Self> {
        if block_size == 0 {
            return Err(RelqError::InvalidPlan(
                "posting block size must be at least 1".to_string(),
            ));
        }
        let token_idx = table.schema().index_of(token_col)?;
        let tid_idx = table.schema().index_of(tid_col)?;
        let weight_idx = weight_col.map(|c| table.schema().index_of(c)).transpose()?;
        // Pass 1: group `(tid, weight)` pairs per token. Probing with
        // `get_mut` before inserting clones each token Value exactly once per
        // distinct token — the `entry` API would clone it on every row.
        let mut grouped: HashMap<Value, Vec<(i64, f64)>> = HashMap::new();
        for row in table.rows() {
            let token = &row[token_idx];
            if token.is_null() || row[tid_idx].is_null() {
                continue; // SQL equality never matches NULL keys.
            }
            let tid = row[tid_idx].as_i64()?;
            let weight = match weight_idx {
                None => 1.0,
                Some(i) => match &row[i] {
                    Value::Null => continue, // NULL contributions vanish under SUM.
                    v => v.as_f64()?,
                },
            };
            if !weight.is_finite() {
                return Err(RelqError::InvalidPlan(format!(
                    "posting weight for token {token} / tid {tid} is not finite"
                )));
            }
            match grouped.get_mut(token) {
                Some(pairs) => pairs.push((tid, weight)),
                None => {
                    grouped.insert(token.clone(), vec![(tid, weight)]);
                }
            }
        }
        // Pass 2: lay the lists out back to back in the flat arenas, sorting
        // each in place (no permuted scratch vectors) and folding the block
        // maxima in the same walk that copies the postings over.
        let num_postings = grouped.values().map(Vec::len).sum();
        let mut tids: Vec<i64> = Vec::with_capacity(num_postings);
        let mut weights: Vec<f64> = Vec::with_capacity(num_postings);
        let mut block_maxes: Vec<f64> = Vec::new();
        let mut map: HashMap<Value, ListMeta> = HashMap::with_capacity(grouped.len());
        for (token, mut pairs) in grouped {
            if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
                pairs.sort_unstable_by_key(|&(tid, _)| tid);
            }
            if let Some(dup) = pairs.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(RelqError::InvalidPlan(format!(
                    "duplicate posting ({token}, {}): posting lists need distinct \
                     (token, tid) pairs",
                    dup[0].0
                )));
            }
            let offset = tids.len();
            let block_offset = block_maxes.len();
            let mut max_weight = f64::NEG_INFINITY;
            for (i, &(tid, weight)) in pairs.iter().enumerate() {
                if i % block_size == 0 {
                    block_maxes.push(f64::NEG_INFINITY);
                }
                let block_max = block_maxes.last_mut().expect("pushed above");
                if weight > *block_max {
                    *block_max = weight;
                }
                if weight > max_weight {
                    max_weight = weight;
                }
                tids.push(tid);
                weights.push(weight);
            }
            map.insert(token, ListMeta { offset, len: pairs.len(), block_offset, max_weight });
        }
        Ok(PostingIndex {
            token_col: token_col.to_string(),
            tid_col: tid_col.to_string(),
            weight_col: weight_col.map(str::to_string),
            block_size,
            tids,
            weights,
            block_maxes,
            map,
        })
    }

    /// The token column the lists are keyed on.
    pub fn token_col(&self) -> &str {
        &self.token_col
    }

    /// The tid column the postings carry.
    pub fn tid_col(&self) -> &str {
        &self.tid_col
    }

    /// The contribution column (`None` = unit weights).
    pub fn weight_col(&self) -> Option<&str> {
        self.weight_col.as_deref()
    }

    /// The block-max granularity this index was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of distinct tokens with a posting list.
    pub fn num_tokens(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings across all lists (the arena length).
    pub fn num_postings(&self) -> usize {
        self.tids.len()
    }

    /// The posting list of one token key, as a borrowed view into the arenas.
    pub fn list(&self, token: &Value) -> Option<PostingList<'_>> {
        let meta = self.map.get(token)?;
        let blocks = meta.len.div_ceil(self.block_size);
        Some(PostingList {
            tids: &self.tids[meta.offset..meta.offset + meta.len],
            weights: &self.weights[meta.offset..meta.offset + meta.len],
            block_maxes: &self.block_maxes[meta.block_offset..meta.block_offset + blocks],
            block_size: self.block_size,
            max_weight: meta.max_weight,
        })
    }
}

/// One query-side probe of a posting list: the list view, the non-negative
/// query-side factor its contributions are scaled by, and the probe row the
/// factor came from (the canonical re-scoring order).
struct ProbedList<'a> {
    list: PostingList<'a>,
    factor: f64,
    /// Upper bound of this list's scaled contribution (`factor * max_weight`;
    /// exact — float multiplication by a non-negative factor is monotone).
    bound: f64,
    /// Cursor into the list during document-at-a-time traversal.
    pos: usize,
    /// Monotone random-access cursor: candidates are enumerated in ascending
    /// tid order, so every probe ([`probe`](Self::probe)) targets a tid no
    /// smaller than the last one and can gallop *forward* from here instead
    /// of bisecting the whole list. Amortized O(1) per probe for dense
    /// candidate runs, never worse than the cold gallop it replaces.
    probe_pos: usize,
    /// Position of this probe in the original probe order (exact re-scoring
    /// accumulates contributions in this order).
    canon: usize,
}

impl<'a> ProbedList<'a> {
    /// The contribution of `tid`, if present — like
    /// [`PostingList::weight_of`] but galloping forward from the monotone
    /// probe cursor. Callers must probe non-decreasing tids (both traversals
    /// enumerate candidates in ascending tid order); re-probing the current
    /// tid is fine, the cursor parks *at* it, not past it.
    fn probe(&mut self, tid: i64) -> Option<f64> {
        self.probe_pos = self.list.seek(self.probe_pos, tid);
        (self.list.tids().get(self.probe_pos) == Some(&tid))
            .then(|| self.list.weights()[self.probe_pos])
    }
}

/// Result ordering: descending score (ties by ascending tid), the one
/// canonical ranking order of the predicate layer.
fn ranks_before(score: f64, tid: i64, than_score: f64, than_tid: i64) -> bool {
    match score.total_cmp(&than_score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => tid < than_tid,
    }
}

/// `bound` cannot reach `theta` even granting a generous rounding margin.
/// The slack is relative (`1e-9`) — seven orders of magnitude above the
/// worst accumulated ulp error of these short sums — so pruning can never
/// discard a tid whose exactly-computed score ties or beats θ.
fn hopeless(bound: f64, theta: f64) -> bool {
    bound < theta - 1e-9 * (theta.abs() + bound.abs() + 1.0)
}

/// The exact `score ≥ τ` admission test of the fixed-τ traversal, with the
/// same NaN semantics as the relational filter it replaces: `Filter`
/// comparisons go through [`Value::total_cmp`], under which NaN compares
/// equal to everything — so a NaN τ admits every candidate (and pruning,
/// whose arithmetic propagates NaN into `false` comparisons, never fires).
/// Scores themselves are finite sums of finite non-negative products and
/// cannot be NaN.
pub(crate) fn admits(score: f64, tau: f64) -> bool {
    !matches!(score.partial_cmp(&tau), Some(std::cmp::Ordering::Less))
}

/// What the block-level check decided for the next candidate range.
enum BlockStep {
    /// Every essential cursor is exhausted (or provably unable to reach the
    /// bar from inside its final block): the traversal is done.
    Exhausted,
    /// The block-level bound sum could not reach the bar for any tid below
    /// the next block boundary; every essential cursor jumped past the
    /// boundary without scoring anything.
    Skipped,
    /// The block bounds cleared the bar: evaluate this candidate tid.
    Evaluate(i64),
}

/// Counters describing how much work one traversal actually did (exposed to
/// the block-structure tests, which assert skipping really happens on
/// adversarial corpora rather than just returning correct answers slowly).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TraversalStats {
    /// Candidates that reached the evaluation path (partial scoring and
    /// possibly the prefix descent).
    pub(crate) evaluated: u64,
    /// Block-level range skips (each jumps every essential cursor to the
    /// next block boundary).
    pub(crate) range_skips: u64,
}

/// The machinery both bounded traversals share: the probed lists sorted by
/// ascending upper bound (ties: longer lists first, so the largest traversal
/// volume becomes skippable soonest), the canonical probe-order permutation
/// for exact re-scoring, prefix bound sums, and the document-at-a-time
/// candidate enumeration with its block-max range skips and bounded prefix
/// descent. Keeping this in one place is what keeps the two operators' bound
/// arithmetic — and therefore their exactness contracts — provably identical.
struct ProbedLists<'a> {
    lists: Vec<ProbedList<'a>>,
    /// Internal list indices in original probe order (canonical re-scoring).
    by_canon: Vec<usize>,
    /// `prefix_bound[i]` = Σ bounds of `lists[0..=i]`.
    prefix_bound: Vec<f64>,
    /// List indices sitting exactly on the current candidate, recorded by
    /// the [`block_step`](Self::block_step) scan so [`consume`](Self::consume)
    /// does not re-scan the essential suffix.
    on_candidate: Vec<usize>,
    /// Gate memo: while the bar keeps these exact bits, candidates below
    /// [`gate_until`](Self::gate_until) evaluate without re-summing block
    /// maxima. Sound because only *skip* verdicts prune — evaluating a
    /// candidate a fresh gate might have skipped merely costs time.
    gate_bar: f64,
    /// First tid at which the memoized cleared verdict expires (a cursor
    /// reaches a new block there, so the block-level bound may change).
    gate_until: i64,
    stats: TraversalStats,
}

impl<'a> ProbedLists<'a> {
    /// `probes` pairs each probed posting list with its query-side factor,
    /// in probe order (the canonical accumulation order). Factors must be
    /// non-negative and finite: a negative factor would invert a list's
    /// ordering and break the upper-bound argument. `op` names the plan
    /// operator in the rejection message.
    fn new(probes: Vec<(PostingList<'a>, f64)>, op: &str) -> Result<Self> {
        let mut lists = Vec::with_capacity(probes.len());
        for (canon, (list, factor)) in probes.into_iter().enumerate() {
            if !(factor >= 0.0 && factor.is_finite()) {
                return Err(RelqError::InvalidPlan(format!(
                    "{op} requires finite non-negative query factors, got {factor}"
                )));
            }
            lists.push(ProbedList {
                list,
                factor,
                bound: factor * list.max_weight(),
                pos: 0,
                probe_pos: 0,
                canon,
            });
        }
        // Ascending bound; equal bounds put the longer list first so it turns
        // non-essential (skippable) earlier.
        lists.sort_by(|a, b| {
            a.bound.total_cmp(&b.bound).then_with(|| b.list.len().cmp(&a.list.len()))
        });
        let mut by_canon: Vec<usize> = (0..lists.len()).collect();
        by_canon.sort_by_key(|&i| lists[i].canon);
        let mut prefix_bound = Vec::with_capacity(lists.len());
        let mut sum = 0.0;
        for l in &lists {
            sum += l.bound;
            prefix_bound.push(sum);
        }
        Ok(ProbedLists {
            lists,
            by_canon,
            prefix_bound,
            on_candidate: Vec::new(),
            gate_bar: f64::NAN,
            gate_until: i64::MIN,
            stats: TraversalStats::default(),
        })
    }

    fn len(&self) -> usize {
        self.lists.len()
    }

    /// Exact score of `tid`, accumulated in probe order — the same order the
    /// materializing aggregation pipeline sums contributions in, so emitted
    /// scores are bit-identical to the exhaustive paths'. Probes go through
    /// the monotone cursors ([`ProbedList::probe`]): survivors arrive in
    /// ascending tid order, so each list is walked forward at most once over
    /// the whole traversal.
    fn exact_score(&mut self, tid: i64) -> f64 {
        let mut score = 0.0;
        for j in 0..self.by_canon.len() {
            let i = self.by_canon[j];
            let l = &mut self.lists[i];
            if let Some(w) = l.probe(tid) {
                score += l.factor * w;
            }
        }
        score
    }

    /// The block-max gate in front of candidate evaluation. One pass over the
    /// essential suffix finds the next candidate (smallest un-visited tid,
    /// recording the lists that carry it for [`consume`](Self::consume));
    /// unless a memoized verdict short-circuits it, a second pass computes
    /// the **block-level** bound valid for every tid below the next block
    /// boundary — Σ `factor · block_max(current block)` over the essential
    /// cursors plus the global bounds of the non-essential prefix — and the
    /// boundary itself (the smallest first-tid of any essential list's next
    /// block). A cleared verdict is memoized until the boundary: below it no
    /// cursor can have entered a new block *at the gate's bound-checking
    /// granularity* (a cursor consuming through its block's tail re-gates
    /// only at the boundary, which can only cost missed skips — Evaluate
    /// verdicts are unconditionally sound), so uniform-weight corpora, whose
    /// block maxima never go hopeless, pay one bound summation per block
    /// range instead of one per candidate.
    ///
    /// If the block bound clears the bar, the candidate is evaluated as
    /// before. If the range is skippable, **no** tid in `[candidate,
    /// boundary)` can beat the bar — consumed cursor positions always lie
    /// below the current candidate, so any such tid's postings in essential
    /// lists sit inside the current blocks, whose maxima the bound sums — and
    /// every essential cursor gallops straight to the boundary. With no next
    /// block anywhere the cursors are in their final blocks and nothing
    /// further can qualify at all.
    ///
    /// ## The two-tier skip decision
    ///
    /// The cheap sorted-order sum decides the common case through
    /// [`hopeless`]'s relative slack. When that sum lands *near or above*
    /// the bar, the decisive test is [`canon_gate_bound`]
    /// (Self::canon_gate_bound): a canonical-order sum that provably
    /// dominates every candidate's exact score bit-for-bit (see its doc),
    /// so it can skip without any slack at all:
    ///
    /// * `tie_skip == false` (fixed-τ selection): skip iff `canon < bar`.
    ///   Every exact score in the range is ≤ `canon` < τ, and `score ≥ τ`
    ///   admission means none of them can be emitted.
    /// * `tie_skip == true` (top-k): skip iff `canon ≤ bar`. Candidates
    ///   arrive in ascending tid order, so every heap entry's tid is below
    ///   the skipped range; a range tid scoring *exactly* θ ranks after the
    ///   heap's worst entry (ties break by ascending tid) and can never
    ///   displace it. Skipping score-ties is therefore exact — the emitted
    ///   top-k is still bit-identical to the exhaustive heap's.
    fn block_step(&mut self, first_essential: usize, bar: f64, tie_skip: bool) -> BlockStep {
        // One scan finds the candidate and records which lists sit on it
        // (consumed later without re-scanning the suffix).
        let candidate = {
            let on = &mut self.on_candidate;
            on.clear();
            let mut candidate = i64::MAX;
            for (i, l) in self.lists.iter().enumerate().skip(first_essential) {
                if l.pos >= l.list.len() {
                    continue;
                }
                let t = l.list.tids()[l.pos];
                if t < candidate {
                    candidate = t;
                    on.clear();
                    on.push(i);
                } else if t == candidate {
                    on.push(i);
                }
            }
            candidate
        };
        if candidate == i64::MAX {
            return BlockStep::Exhausted;
        }
        // Memoized cleared verdict: until a cursor can have reached a new
        // block (`gate_until`) under an unchanged bar, the block-level bound
        // still clears — evaluate without touching the block-max arrays.
        if bar.to_bits() == self.gate_bar.to_bits() && candidate < self.gate_until {
            self.stats.evaluated += 1;
            return BlockStep::Evaluate(candidate);
        }
        let prefix =
            if first_essential == 0 { 0.0 } else { self.prefix_bound[first_essential - 1] };
        let mut block_bound = prefix;
        let mut boundary = i64::MAX;
        for l in &self.lists[first_essential..] {
            if l.pos >= l.list.len() {
                continue;
            }
            block_bound += l.factor * l.list.block_max_at(l.pos);
            if let Some(&t) = l.list.tids().get(l.list.next_block_start(l.pos)) {
                boundary = boundary.min(t);
            }
        }
        // Tier 1: the sorted-order sum is near or above the bar. Tier 2
        // decides exactly via the canonical-order dominating bound — skips
        // there need no slack, and top-k may skip score-ties outright.
        let skip = if hopeless(block_bound, bar) {
            true
        } else {
            let canon = self.canon_gate_bound(first_essential);
            if tie_skip {
                canon <= bar
            } else {
                canon < bar
            }
        };
        if !skip {
            self.gate_bar = bar;
            self.gate_until = boundary;
            self.stats.evaluated += 1;
            return BlockStep::Evaluate(candidate);
        }
        if boundary == i64::MAX {
            // Every essential cursor sits in its list's final block and even
            // the block maxima cannot reach the bar: nothing left qualifies.
            return BlockStep::Exhausted;
        }
        self.stats.range_skips += 1;
        for l in &mut self.lists[first_essential..] {
            l.pos = l.list.seek(l.pos, boundary);
        }
        BlockStep::Skipped
    }

    /// A bound on the exact probe-order score of **every** tid in the current
    /// candidate range, accumulated in canonical probe order — the same order
    /// [`exact_score`](Self::exact_score) sums in — so the domination is
    /// bit-level, not approximate: per canonical position the score adds
    /// either nothing or `fl(factor · w)` with `w ≤ max`, the bound adds
    /// `fl(factor · max) ≥ 0`, and IEEE multiplication and addition are both
    /// monotone, so by induction every partial sum of the score is ≤ the
    /// matching partial sum of the bound, and `fl(score) ≤ fl(bound)` exactly.
    /// Non-essential prefix lists contribute their whole-list bound (the tid
    /// may sit anywhere in them); essential cursors contribute their current
    /// block maximum (range tids' postings sit inside the current blocks);
    /// exhausted essential lists contribute nothing (no postings remain at or
    /// past the candidate). Terms are clamped at zero so a list of negative
    /// weights still dominates the absent-doc contribution of 0 (clamping
    /// only raises the sum, so domination is preserved).
    fn canon_gate_bound(&self, first_essential: usize) -> f64 {
        let mut bound = 0.0;
        for &i in &self.by_canon {
            let l = &self.lists[i];
            if i < first_essential {
                bound += l.bound.max(0.0);
            } else if l.pos < l.list.len() {
                bound += (l.factor * l.list.block_max_at(l.pos)).max(0.0);
            }
        }
        bound
    }

    /// Consume the current candidate `tid`: advance the cursors
    /// [`block_step`](Self::block_step) recorded as sitting on it and return
    /// its partial score from those lists.
    fn consume(&mut self, tid: i64) -> f64 {
        let mut partial = 0.0;
        for j in 0..self.on_candidate.len() {
            let l = &mut self.lists[self.on_candidate[j]];
            debug_assert_eq!(l.list.tids().get(l.pos), Some(&tid));
            partial += l.factor * l.list.weights()[l.pos];
            l.pos += 1;
        }
        partial
    }

    /// Descend through the non-essential prefix for `tid`, highest bound
    /// first, adding its contributions to `partial` — abandoning with `None`
    /// as soon as the remaining upper bounds cannot lift the partial score
    /// past `bar` (with the [`hopeless`] slack, so no qualifying tid is ever
    /// abandoned).
    fn descend_prefix(
        &mut self,
        tid: i64,
        mut partial: f64,
        first_essential: usize,
        bar: f64,
    ) -> Option<f64> {
        for i in (0..first_essential).rev() {
            if hopeless(partial + self.prefix_bound[i], bar) {
                return None;
            }
            let l = &mut self.lists[i];
            if let Some(w) = l.probe(tid) {
                partial += l.factor * w;
            }
        }
        Some(partial)
    }
}

/// The document-at-a-time max-score traversal behind
/// [`Plan::TopKBounded`](crate::Plan::TopKBounded).
///
/// A growing prefix of "non-essential" lists — those whose bounds sum below
/// the current threshold θ (the k-th best exact score so far) — is excluded
/// from candidate generation: a tid appearing only there cannot reach the
/// heap. Candidates from the essential suffix pass the block-max gate first
/// (see [`ProbedLists::block_step`]): ranges whose block-level bound sum
/// cannot reach θ are skipped wholesale, cursors galloping to the next block
/// boundary. Surviving candidates consult the non-essential prefix via
/// bounded random accesses that abandon as soon as the remaining upper
/// bounds cannot lift the partial score past θ (see [`ProbedLists`]).
///
/// When the execution limits carry a [`SharedBar`](crate::SharedBar)
/// (sharded execution), the pruning bar is `max(local θ, shared bar)`: each
/// worker publishes its local θ once its heap fills, and every published
/// value is a lower bound on the *global* k-th best score, so pruning
/// against it can only drop candidates outside the global top k. Because the
/// bar arrives asynchronously, *which* candidates get skipped depends on
/// thread interleaving — the merged result is tie-class-equal at the k
/// boundary rather than byte-stable (the monolithic, bar-free traversal
/// stays fully deterministic).
pub(crate) struct MaxScoreTraversal<'a> {
    probed: ProbedLists<'a>,
    /// `lists[0..first_essential]` are non-essential under the current θ.
    first_essential: usize,
    k: usize,
    /// The `k` best `(score, tid)` seen so far, worst first (max-heap under
    /// "ranks last"); θ is the score of `heap[0]` once full.
    heap: Vec<(f64, i64)>,
}

impl<'a> MaxScoreTraversal<'a> {
    /// Wrap the probes (see [`ProbedLists::new`]) for a top-`k` selection.
    pub(crate) fn new(probes: Vec<(PostingList<'a>, f64)>, k: usize) -> Result<Self> {
        Ok(MaxScoreTraversal {
            probed: ProbedLists::new(probes, "TopKBounded")?,
            first_essential: 0,
            k,
            heap: Vec::new(),
        })
    }

    /// θ: the k-th best exact score, or −∞ until the heap is full.
    fn theta(&self) -> f64 {
        if self.heap.len() == self.k {
            self.heap.first().map(|&(s, _)| s).unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// `a` ranks strictly after `b` — i.e. `a` is the worse entry.
    fn is_worse(a: &(f64, i64), b: &(f64, i64)) -> bool {
        ranks_before(b.0, b.1, a.0, a.1)
    }

    /// Restore the "worst entry at the root" invariant downward from `i`.
    fn sift_down(heap: &mut [(f64, i64)], mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < heap.len() && Self::is_worse(&heap[l], &heap[worst]) {
                worst = l;
            }
            if r < heap.len() && Self::is_worse(&heap[r], &heap[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            heap.swap(i, worst);
            i = worst;
        }
    }

    fn push_heap(&mut self, score: f64, tid: i64) {
        if self.heap.len() < self.k {
            self.heap.push((score, tid));
            // Sift up under "worst at the root".
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if Self::is_worse(&self.heap[i], &self.heap[parent]) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if ranks_before(score, tid, self.heap[0].0, self.heap[0].1) {
            self.heap[0] = (score, tid);
            Self::sift_down(&mut self.heap, 0);
        }
    }

    /// Run the traversal, returning `(tid, score)` in ranking order. With
    /// `limits`, the traversal charges one candidate per evaluation and
    /// stops early on exhaustion — the heap drained at that point is the
    /// anytime answer: the exact top-k *of the candidates visited so far*,
    /// every score bit-identical to the exhaustive run's entry for that tid
    /// (survivors are re-scored exactly before admission).
    pub(crate) fn run(self, limits: Option<&crate::limits::ExecLimits>) -> Vec<(i64, f64)> {
        self.run_with_stats(limits).0
    }

    /// [`run`](Self::run), also reporting the work counters (test/bench
    /// introspection).
    pub(crate) fn run_with_stats(
        mut self,
        limits: Option<&crate::limits::ExecLimits>,
    ) -> (Vec<(i64, f64)>, TraversalStats) {
        if self.k == 0 || self.probed.len() == 0 {
            return (Vec::new(), self.probed.stats);
        }
        // The shared θ bar of a sharded execution, if the limits carry one.
        // `max(local θ, shared bar)` is the pruning bar everywhere below:
        // both components are monotone lower bounds on the global k-th best
        // score, so the combined bar only ever drops candidates that cannot
        // enter the (global) top k. Without a bar this reduces exactly to
        // the bar-free traversal: θ is −∞ until the heap fills, and
        // `hopeless(·, −∞)` never holds.
        let shared_bar = limits.and_then(|l| l.topk_bar());
        loop {
            let theta = self.theta();
            let bar = match shared_bar {
                Some(b) => theta.max(b.get()),
                None => theta,
            };
            // Grow the non-essential prefix: lists[0..first_essential] alone
            // can no longer produce a heap entry.
            while self.first_essential < self.probed.len()
                && hopeless(self.probed.prefix_bound[self.first_essential], bar)
            {
                self.first_essential += 1;
            }
            if self.first_essential == self.probed.len() {
                break; // Even the sum of all remaining bounds is below the bar.
            }
            // The block-max gate: either the next candidate to evaluate, a
            // wholesale skip past a hopeless block range, or the end. Top-k
            // skips score-ties too (`tie_skip`): locally, a range tid scoring
            // exactly θ has a higher tid than every heap entry and cannot
            // displace the worst one; at a shared bar value B, the worker
            // that published B holds k entries scoring ≥ B, so a tie at B can
            // only trade places inside the k-boundary tie class.
            let tid = match self.probed.block_step(self.first_essential, bar, true) {
                BlockStep::Exhausted => break,
                BlockStep::Skipped => continue,
                BlockStep::Evaluate(tid) => tid,
            };
            // Budget cut point: nothing about `tid` has been consumed yet,
            // so stopping here leaves the heap holding only exactly-scored
            // entries — the anytime answer.
            if let Some(limits) = limits {
                if !limits.charge_candidate() {
                    break;
                }
            }
            crate::fault::fault_point("relq.topk.candidate");
            let partial = self.probed.consume(tid);
            if let Some(limits) = limits {
                limits.charge_postings(self.probed.on_candidate.len() as u64);
            }
            let Some(partial) = self.probed.descend_prefix(tid, partial, self.first_essential, bar)
            else {
                continue; // Abandoned mid-descent: cannot reach the bar.
            };
            // With no shared bar this is the classic heap-full θ check
            // (`bar` is −∞ until the heap fills); with one, a candidate
            // hopeless against the shared bar is skipped even before the
            // local heap fills — another shard already proved it cannot be
            // global top-k.
            if hopeless(partial, bar) {
                continue;
            }
            // Survivor: re-score exactly in probe order before admission.
            let exact = self.probed.exact_score(tid);
            self.push_heap(exact, tid);
            // Publish the new local θ: the heap holds k exact scores ≥ θ,
            // so θ lower-bounds the global k-th best score.
            if let Some(b) = shared_bar {
                if self.heap.len() == self.k {
                    b.raise(self.heap[0].0);
                }
            }
        }
        // Drain the max-heap worst-first, then reverse into ranking order.
        let mut out = Vec::with_capacity(self.heap.len());
        while !self.heap.is_empty() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            let (score, tid) = self.heap.pop().expect("non-empty");
            out.push((tid, score));
            Self::sift_down(&mut self.heap, 0);
        }
        out.reverse();
        (out, self.probed.stats)
    }
}

/// The document-at-a-time max-score traversal behind
/// [`Plan::ThresholdBounded`](crate::Plan::ThresholdBounded): the threshold
/// selection "return every tid with `score ≥ τ`" over the same posting
/// lists [`MaxScoreTraversal`] uses for top-k.
///
/// The bar is **fixed** at τ from the start, which simplifies everything the
/// top-k traversal has to maintain dynamically: there is no heap, and the
/// non-essential prefix — the lists whose summed upper bounds cannot reach
/// τ — is computed once before the descent instead of growing as θ rises. A
/// tid appearing only in non-essential lists can never reach τ and is never
/// visited; candidates from the essential suffix pass the same block-max
/// gate as top-k (hopeless block ranges are skipped wholesale) and consult
/// the prefix through the same highest-bound-first random accesses with
/// early abandon.
///
/// ## Exactness
///
/// Pruning carries the shared relative slack (see [`hopeless`]), block
/// maxima bound every weight in their block, so no tid whose exact score
/// ties or beats τ is ever discarded or skipped; every survivor is re-scored
/// in probe order and admitted by the **exact** `score ≥ τ` test
/// ([`admits`], no slack). The emitted `(tid, score)` set is therefore
/// bit-identical — tids and score bits — to exhaustively scoring every
/// candidate in probe-major order and filtering, which is exactly what the
/// naive lowering does. Results are in ranking order (score descending,
/// ties by ascending tid).
///
/// A non-finite τ behaves like the exhaustive filter too: `τ = −∞` disables
/// pruning and admits every candidate, `τ = +∞` short-circuits to empty (no
/// finite score reaches it), and `τ = NaN` admits every candidate — the
/// relational comparator treats NaN as equal to everything (see [`admits`]).
pub(crate) struct ThresholdTraversal<'a> {
    probed: ProbedLists<'a>,
    /// The fixed selection bar τ.
    tau: f64,
}

impl<'a> ThresholdTraversal<'a> {
    /// Wrap the probes (see [`ProbedLists::new`]) for a selection at `tau`.
    pub(crate) fn new(probes: Vec<(PostingList<'a>, f64)>, tau: f64) -> Result<Self> {
        Ok(ThresholdTraversal { probed: ProbedLists::new(probes, "ThresholdBounded")?, tau })
    }

    /// Run the traversal, returning every `(tid, score)` with `score ≥ τ` in
    /// ranking order. With `limits`, the traversal charges one candidate per
    /// evaluation and stops early on exhaustion — the survivors admitted so
    /// far are the anytime answer: a subset of the exact selection, every
    /// score bit-identical to the exhaustive run's entry for that tid.
    pub(crate) fn run(self, limits: Option<&crate::limits::ExecLimits>) -> Vec<(i64, f64)> {
        self.run_with_stats(limits).0
    }

    /// [`run`](Self::run), also reporting the work counters (test/bench
    /// introspection).
    pub(crate) fn run_with_stats(
        mut self,
        limits: Option<&crate::limits::ExecLimits>,
    ) -> (Vec<(i64, f64)>, TraversalStats) {
        let tau = self.tau;
        // τ = +∞: no finite score qualifies, and the prefix/pruning
        // arithmetic degenerates (∞ − ∞ = NaN compares false, disabling
        // pruning) — short-circuit instead of scoring every candidate only
        // to reject it.
        if self.probed.len() == 0 || tau == f64::INFINITY {
            return (Vec::new(), self.probed.stats);
        }
        // The non-essential prefix under the fixed bar: computed once — τ
        // never moves, so unlike top-k it can never grow mid-traversal.
        let mut first_essential = 0;
        while first_essential < self.probed.len()
            && hopeless(self.probed.prefix_bound[first_essential], tau)
        {
            first_essential += 1;
        }
        let mut out: Vec<(i64, f64)> = Vec::new();
        if first_essential == self.probed.len() {
            return (out, self.probed.stats); // Even the sum of all bounds is below τ.
        }
        // Candidates arrive in ascending tid order from the essential
        // cursors, gated by the block-max check; each survivor consults the
        // non-essential prefix with early abandon, exactly like the top-k
        // traversal at a frozen θ.
        loop {
            // No tie-skip here: `score ≥ τ` admission means an exact tie at τ
            // must be emitted, so only ranges strictly below τ may skip.
            let tid = match self.probed.block_step(first_essential, tau, false) {
                BlockStep::Exhausted => break,
                BlockStep::Skipped => continue,
                BlockStep::Evaluate(tid) => tid,
            };
            // Budget cut point: `out` holds only exactly-scored, admitted
            // survivors, so stopping between candidates is always clean.
            if let Some(limits) = limits {
                if !limits.charge_candidate() {
                    break;
                }
            }
            crate::fault::fault_point("relq.threshold.candidate");
            let partial = self.probed.consume(tid);
            if let Some(limits) = limits {
                limits.charge_postings(self.probed.on_candidate.len() as u64);
            }
            let Some(partial) = self.probed.descend_prefix(tid, partial, first_essential, tau)
            else {
                continue; // Abandoned mid-descent: cannot reach τ.
            };
            if hopeless(partial, tau) {
                continue;
            }
            // Survivor: the exact probe-order score decides admission — no
            // slack here, so the emitted set matches the exhaustive filter
            // bit for bit.
            let exact = self.probed.exact_score(tid);
            if admits(exact, tau) {
                out.push((tid, exact));
            }
        }
        // Emit in ranking order.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        (out, self.probed.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn weights_table(rows: &[(i64, i64, f64)]) -> Table {
        let schema = Schema::from_pairs(&[
            ("tid", DataType::Int),
            ("token", DataType::Int),
            ("weight", DataType::Float),
        ]);
        let mut t = Table::empty(schema);
        for &(tid, token, w) in rows {
            t.push_row(vec![Value::Int(tid), Value::Int(token), Value::Float(w)]).unwrap();
        }
        t
    }

    #[test]
    fn build_produces_tid_sorted_lists_with_max() {
        let t = weights_table(&[(3, 7, 0.5), (1, 7, 0.25), (2, 9, 1.5), (1, 9, 0.75)]);
        let ix = PostingIndex::build(&t, "token", "tid", Some("weight")).unwrap();
        assert_eq!(ix.num_tokens(), 2);
        assert_eq!(ix.num_postings(), 4);
        assert_eq!(ix.block_size(), DEFAULT_POSTING_BLOCK);
        let l7 = ix.list(&Value::Int(7)).unwrap();
        assert_eq!(l7.tids(), &[1, 3]);
        assert_eq!(l7.weights(), &[0.25, 0.5]);
        assert_eq!(l7.max_weight(), 0.5);
        assert_eq!(l7.weight_of(3), Some(0.5));
        assert_eq!(l7.weight_of(99), None);
        // Both lists fit one default-sized block: block max == list max.
        assert_eq!(l7.num_blocks(), 1);
        assert_eq!(l7.block_maxes(), &[0.5]);
        assert!(ix.list(&Value::Int(42)).is_none());
    }

    #[test]
    fn unit_weight_lists_and_null_rows() {
        let schema = Schema::from_pairs(&[("tid", DataType::Int), ("token", DataType::Int)]);
        let mut t = Table::empty(schema);
        t.push_row(vec![Value::Int(1), Value::Int(5)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        t.push_row(vec![Value::Null, Value::Int(5)]).unwrap();
        let ix = PostingIndex::build(&t, "token", "tid", None).unwrap();
        assert_eq!(ix.num_postings(), 1);
        assert_eq!(ix.list(&Value::Int(5)).unwrap().max_weight(), 1.0);
    }

    #[test]
    fn non_finite_weights_duplicates_and_zero_blocks_are_rejected() {
        let t = weights_table(&[(1, 7, f64::INFINITY)]);
        assert!(PostingIndex::build(&t, "token", "tid", Some("weight")).is_err());
        let t = weights_table(&[(1, 7, 0.5), (1, 7, 0.25)]);
        assert!(PostingIndex::build(&t, "token", "tid", Some("weight")).is_err());
        let t = weights_table(&[]);
        assert!(PostingIndex::build(&t, "nope", "tid", Some("weight")).is_err());
        let t = weights_table(&[(1, 7, 0.5)]);
        assert!(PostingIndex::build_with_block_size(&t, "token", "tid", Some("weight"), 0).is_err());
    }

    #[test]
    fn block_structure_is_laid_out_per_list() {
        // List 7: 5 postings at block size 2 -> blocks [max(.5,.25), max(1.,.75), .125].
        let t = weights_table(&[
            (1, 7, 0.5),
            (2, 7, 0.25),
            (3, 7, 1.0),
            (4, 7, 0.75),
            (5, 7, 0.125),
            (1, 9, 2.0),
        ]);
        let ix =
            PostingIndex::build_with_block_size(&t, "token", "tid", Some("weight"), 2).unwrap();
        assert_eq!(ix.block_size(), 2);
        let l7 = ix.list(&Value::Int(7)).unwrap();
        assert_eq!(l7.num_blocks(), 3);
        assert_eq!(l7.block_maxes(), &[0.5, 1.0, 0.125]);
        assert_eq!(l7.block_max_at(0), 0.5);
        assert_eq!(l7.block_max_at(3), 1.0);
        assert_eq!(l7.block_max_at(4), 0.125);
        assert_eq!(l7.next_block_start(0), 2);
        assert_eq!(l7.next_block_start(3), 4);
        assert_eq!(l7.next_block_start(4), 6);
        let l9 = ix.list(&Value::Int(9)).unwrap();
        assert_eq!(l9.block_maxes(), &[2.0]);
        // A block size beyond every list degenerates to the global max.
        let ix =
            PostingIndex::build_with_block_size(&t, "token", "tid", Some("weight"), usize::MAX)
                .unwrap();
        let l7 = ix.list(&Value::Int(7)).unwrap();
        assert_eq!(l7.block_maxes(), &[l7.max_weight()]);
        assert!(l7.next_block_start(4) >= l7.len());
    }

    #[test]
    fn block_maxes_bound_every_weight_exactly() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(1..6);
            let block_size = g.usize_in(1..10);
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let len = g.usize_in(1..40);
                let mut tid = 0i64;
                for _ in 0..len {
                    tid += g.int_in(1..4);
                    rows.push((tid, token, g.f64_in(0.0..2.0)));
                }
            }
            let table = weights_table(&rows);
            let ix = PostingIndex::build_with_block_size(
                &table,
                "token",
                "tid",
                Some("weight"),
                block_size,
            )
            .unwrap();
            for token in 0..num_tokens as i64 {
                let list = ix.list(&Value::Int(token)).unwrap();
                assert_eq!(list.num_blocks(), list.len().div_ceil(block_size));
                // Every block max is exactly the max of its block's weights
                // (an upper bound that is also attained).
                for (b, chunk) in list.weights().chunks(block_size).enumerate() {
                    let expect = chunk.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    assert_eq!(list.block_maxes()[b].to_bits(), expect.to_bits());
                }
                // Position-level view: each weight is bounded by its block max
                // and the list max.
                for pos in 0..list.len() {
                    assert!(list.weights()[pos] <= list.block_max_at(pos));
                    assert!(list.block_max_at(pos) <= list.max_weight());
                }
            }
        });
    }

    #[test]
    fn galloping_seek_lands_exactly_where_binary_search_would() {
        use proptest::prelude::*;
        check(64, |g| {
            let len = g.usize_in(1..60);
            let mut tids: Vec<i64> = Vec::with_capacity(len);
            let mut tid = 0i64;
            for _ in 0..len {
                tid += g.int_in(1..6);
                tids.push(tid);
            }
            let rows: Vec<(i64, i64, f64)> = tids.iter().map(|&t| (t, 0, 1.0)).collect();
            let table = weights_table(&rows);
            let ix = PostingIndex::build_with_block_size(
                &table,
                "token",
                "tid",
                Some("weight"),
                g.usize_in(1..8),
            )
            .unwrap();
            let list = ix.list(&Value::Int(0)).unwrap();
            let max_tid = *tids.last().unwrap();
            for _ in 0..30 {
                let from = g.usize_in(0..len + 2);
                let target = g.int_in(-1..max_tid + 3);
                let expect = from.min(list.len())
                    + list.tids()[from.min(list.len())..].partition_point(|&t| t < target);
                assert_eq!(
                    list.seek(from, target),
                    expect,
                    "seek(from={from}, tid={target}) over {tids:?}"
                );
            }
            // weight_of agrees with a plain binary search at every position.
            for probe in -1..=max_tid + 1 {
                let expect = list.tids().binary_search(&probe).ok().map(|i| list.weights()[i]);
                assert_eq!(list.weight_of(probe), expect);
            }
        });
    }

    /// Exhaustive reference scorer in probe order.
    fn reference_top_k(ix: &PostingIndex, probes: &[(i64, f64)], k: usize) -> Vec<(i64, f64)> {
        let mut order: Vec<i64> = Vec::new();
        let mut scores: HashMap<i64, f64> = HashMap::new();
        for &(token, factor) in probes {
            if let Some(list) = ix.list(&Value::Int(token)) {
                for (i, &tid) in list.tids().iter().enumerate() {
                    let slot = scores.entry(tid).or_insert_with(|| {
                        order.push(tid);
                        0.0
                    });
                    *slot += factor * list.weights()[i];
                }
            }
        }
        let mut out: Vec<(i64, f64)> = order.into_iter().map(|t| (t, scores[&t])).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    fn run_bounded(ix: &PostingIndex, probes: &[(i64, f64)], k: usize) -> Vec<(i64, f64)> {
        let probed: Vec<(PostingList, f64)> = probes
            .iter()
            .filter_map(|&(token, factor)| ix.list(&Value::Int(token)).map(|l| (l, factor)))
            .collect();
        MaxScoreTraversal::new(probed, k).unwrap().run(None)
    }

    /// A handful of adversarial block granularities: per-posting maxima,
    /// tiny/odd blocks, the default, and beyond-every-list (plain WAND).
    const BLOCK_SWEEP: [usize; 6] = [1, 2, 3, 7, DEFAULT_POSTING_BLOCK, usize::MAX];

    #[test]
    fn bounded_matches_exhaustive_reference_on_random_inputs() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(1..12);
            let num_tids = g.usize_in(1..40) as i64;
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let mut tids: Vec<i64> = (0..num_tids).collect();
                let keep = g.usize_in(1..(num_tids as usize + 1));
                while tids.len() > keep {
                    let drop = g.usize_in(0..tids.len());
                    tids.remove(drop);
                }
                for tid in tids {
                    rows.push((tid, token, g.f64_in(0.0..2.0)));
                }
            }
            let table = weights_table(&rows);
            let mut probes: Vec<(i64, f64)> = Vec::new();
            for t in 0..num_tokens as i64 {
                if g.bool_with(0.8) {
                    probes.push((t, g.f64_in(0.0..1.5)));
                }
            }
            for block_size in BLOCK_SWEEP {
                let ix = PostingIndex::build_with_block_size(
                    &table,
                    "token",
                    "tid",
                    Some("weight"),
                    block_size,
                )
                .unwrap();
                for k in [0, 1, 3, 10, 1000] {
                    let bounded = run_bounded(&ix, &probes, k);
                    let exhaustive = reference_top_k(&ix, &probes, k);
                    assert_eq!(
                        bounded.len(),
                        exhaustive.len(),
                        "k={k} bs={block_size} probes={probes:?} rows={rows:?}"
                    );
                    // Same score multiset; identical tids wherever scores are
                    // unique (random weights: ties are essentially
                    // impossible, so this is equality in practice).
                    for (b, e) in bounded.iter().zip(&exhaustive) {
                        assert_eq!(
                            b.1.to_bits(),
                            e.1.to_bits(),
                            "score diverged at k={k} bs={block_size}"
                        );
                    }
                    let mut bt: Vec<i64> = bounded.iter().map(|x| x.0).collect();
                    let mut et: Vec<i64> = exhaustive.iter().map(|x| x.0).collect();
                    bt.sort_unstable();
                    et.sort_unstable();
                    assert_eq!(bt, et, "tid set diverged at k={k} bs={block_size}");
                }
            }
        });
    }

    #[test]
    fn pruning_never_skips_a_tid_that_outscores_the_kth() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(2..10);
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let len = g.usize_in(1..25);
                let mut tid = 0i64;
                for _ in 0..len {
                    tid += g.int_in(1..5);
                    rows.push((tid, token, g.f64_in(0.0..1.0)));
                }
            }
            let table = weights_table(&rows);
            let block_size = BLOCK_SWEEP[g.usize_in(0..BLOCK_SWEEP.len())];
            let ix = PostingIndex::build_with_block_size(
                &table,
                "token",
                "tid",
                Some("weight"),
                block_size,
            )
            .unwrap();
            let probes: Vec<(i64, f64)> =
                (0..num_tokens as i64).map(|t| (t, g.f64_in(0.0..1.0))).collect();
            let k = g.usize_in(1..8);
            let bounded = run_bounded(&ix, &probes, k);
            let all = reference_top_k(&ix, &probes, usize::MAX);
            if bounded.len() < k {
                assert_eq!(bounded.len(), all.len(), "short result must mean few candidates");
            }
            if let Some(&(_, kth)) = bounded.last() {
                let returned: std::collections::HashSet<i64> =
                    bounded.iter().map(|x| x.0).collect();
                for &(tid, score) in &all {
                    assert!(
                        returned.contains(&tid) || score <= kth,
                        "skipped tid {tid} (score {score}) outscores the k-th ({kth}) \
                         at bs={block_size}"
                    );
                }
            }
        });
    }

    #[test]
    fn negative_factors_are_rejected() {
        let t = weights_table(&[(1, 7, 0.5)]);
        let ix = PostingIndex::build(&t, "token", "tid", Some("weight")).unwrap();
        let list = ix.list(&Value::Int(7)).unwrap();
        assert!(MaxScoreTraversal::new(vec![(list, -0.5)], 3).is_err());
        assert!(MaxScoreTraversal::new(vec![(list, f64::NAN)], 3).is_err());
        assert!(MaxScoreTraversal::new(vec![(list, 0.0)], 3).is_ok());
        assert!(ThresholdTraversal::new(vec![(list, -0.5)], 0.1).is_err());
        assert!(ThresholdTraversal::new(vec![(list, f64::INFINITY)], 0.1).is_err());
        assert!(ThresholdTraversal::new(vec![(list, 0.0)], 0.1).is_ok());
    }

    /// Exhaustive reference selection in probe-major accumulation order,
    /// under the relational filter's comparison semantics ([`admits`]).
    fn reference_threshold(ix: &PostingIndex, probes: &[(i64, f64)], tau: f64) -> Vec<(i64, f64)> {
        let mut all = reference_top_k(ix, probes, usize::MAX);
        all.retain(|&(_, score)| admits(score, tau));
        all
    }

    fn run_threshold(ix: &PostingIndex, probes: &[(i64, f64)], tau: f64) -> Vec<(i64, f64)> {
        let probed: Vec<(PostingList, f64)> = probes
            .iter()
            .filter_map(|&(token, factor)| ix.list(&Value::Int(token)).map(|l| (l, factor)))
            .collect();
        ThresholdTraversal::new(probed, tau).unwrap().run(None)
    }

    #[test]
    fn threshold_traversal_is_bit_identical_to_exhaustive_filter() {
        use proptest::prelude::*;
        check(48, |g| {
            let num_tokens = g.usize_in(1..12);
            let num_tids = g.usize_in(1..40) as i64;
            let mut rows = Vec::new();
            for token in 0..num_tokens as i64 {
                let mut tids: Vec<i64> = (0..num_tids).collect();
                let keep = g.usize_in(1..(num_tids as usize + 1));
                while tids.len() > keep {
                    let drop = g.usize_in(0..tids.len());
                    tids.remove(drop);
                }
                for tid in tids {
                    rows.push((tid, token, g.f64_in(0.0..2.0)));
                }
            }
            let table = weights_table(&rows);
            let mut probes: Vec<(i64, f64)> = Vec::new();
            for t in 0..num_tokens as i64 {
                if g.bool_with(0.8) {
                    probes.push((t, g.f64_in(0.0..1.5)));
                }
            }
            let reference_ix = PostingIndex::build(&table, "token", "tid", Some("weight")).unwrap();
            let all = reference_top_k(&reference_ix, &probes, usize::MAX);
            // τ sweep: non-finite bars, a bar below every score, bars equal
            // to exact scores (the `>=` boundary), between-score bars and a
            // bar above the maximum.
            let mut taus = vec![f64::NEG_INFINITY, 0.0, f64::INFINITY, f64::NAN, 1e300, -1e300];
            if let (Some(&(_, hi)), Some(&(_, lo))) = (all.first(), all.last()) {
                taus.extend([lo, hi, (lo + hi) / 2.0, hi * 1.5 + 1.0, lo / 2.0]);
                if let Some(&(_, mid)) = all.get(all.len() / 2) {
                    taus.push(mid);
                    taus.push(f64::from_bits(mid.to_bits() + 1)); // next float up
                }
            }
            for block_size in BLOCK_SWEEP {
                let ix = PostingIndex::build_with_block_size(
                    &table,
                    "token",
                    "tid",
                    Some("weight"),
                    block_size,
                )
                .unwrap();
                for &tau in &taus {
                    let bounded = run_threshold(&ix, &probes, tau);
                    let exhaustive = reference_threshold(&ix, &probes, tau);
                    assert_eq!(
                        bounded.len(),
                        exhaustive.len(),
                        "tau={tau} bs={block_size} probes={probes:?}"
                    );
                    for (b, e) in bounded.iter().zip(&exhaustive) {
                        assert_eq!(b.0, e.0, "tid diverged at tau={tau} bs={block_size}");
                        assert_eq!(
                            b.1.to_bits(),
                            e.1.to_bits(),
                            "score bits diverged at tau={tau} bs={block_size}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn threshold_traversal_never_prunes_a_qualifying_tid() {
        // Adversarial shape for the prefix computation: many light lists that
        // are individually hopeless but sum across the bar.
        // 0.125 is exactly representable, so ten of them sum to exactly 1.25.
        let mut rows = Vec::new();
        for token in 0..10i64 {
            for tid in 0..20i64 {
                rows.push((tid, token, 0.125));
            }
        }
        rows.push((3, 10, 1.0)); // one heavy list lifts tid 3
        let table = weights_table(&rows);
        let probes: Vec<(i64, f64)> = (0..11).map(|t| (t, 1.0)).collect();
        for block_size in BLOCK_SWEEP {
            let ix = PostingIndex::build_with_block_size(
                &table,
                "token",
                "tid",
                Some("weight"),
                block_size,
            )
            .unwrap();
            // Every tid scores exactly 1.25 except tid 3 at 2.25.
            let selected = run_threshold(&ix, &probes, 1.25);
            assert_eq!(selected.len(), 20, "every tid reaches τ=1.25 exactly (bs={block_size})");
            assert_eq!(selected[0], (3, 2.25));
            let selected = run_threshold(&ix, &probes, 1.5);
            assert_eq!(selected, vec![(3, 2.25)]);
            let selected = run_threshold(&ix, &probes, 2.5);
            assert!(selected.is_empty());
        }
    }

    #[test]
    fn one_hot_document_defeats_global_max_but_not_block_max() {
        // The adversarial corpus of the block-max motivation: one long list
        // whose few hot documents poison its *global* bound. Every other
        // posting is featherweight, so with per-list maxima alone the list
        // stays essential and every candidate must be evaluated; per-block
        // maxima confine the damage to the hot documents' blocks and the
        // traversal skips the rest of the list block by block. The early hot
        // tids fill the top-k heap quickly, lifting θ far above any cold
        // block's bound.
        let n = 4_000i64;
        let hot = [10i64, 20, 30, 40, 50, 2_377];
        let mut rows = Vec::new();
        for tid in 0..n {
            rows.push((tid, 0, if hot.contains(&tid) { 10.0 } else { 0.01 }));
        }
        // A short companion list so the probe has more than one cursor.
        for tid in (0..n).step_by(97) {
            rows.push((tid, 1, 1.0));
        }
        let table = weights_table(&rows);
        let probes = vec![(0i64, 1.0f64), (1i64, 1.0f64)];

        let block = PostingIndex::build_with_block_size(&table, "token", "tid", Some("weight"), 64)
            .unwrap();
        let global =
            PostingIndex::build_with_block_size(&table, "token", "tid", Some("weight"), usize::MAX)
                .unwrap();

        fn gather_from<'a>(
            ix: &'a PostingIndex,
            probes: &[(i64, f64)],
        ) -> Vec<(PostingList<'a>, f64)> {
            probes
                .iter()
                .filter_map(|&(token, factor)| ix.list(&Value::Int(token)).map(|l| (l, factor)))
                .collect()
        }

        // Top-k: identical results, far fewer evaluated candidates.
        let (block_topk, block_stats) =
            MaxScoreTraversal::new(gather_from(&block, &probes), 5).unwrap().run_with_stats(None);
        let (global_topk, global_stats) =
            MaxScoreTraversal::new(gather_from(&global, &probes), 5).unwrap().run_with_stats(None);
        assert_eq!(block_topk, global_topk);
        assert_eq!(block_topk, reference_top_k(&block, &probes, 5));
        assert!(
            block_topk.iter().all(|&(tid, _)| hot.contains(&tid)),
            "the hot documents must win: {block_topk:?}"
        );
        assert!(block_stats.range_skips > 0, "block maxima must produce range skips");
        assert!(
            block_stats.evaluated * 4 < global_stats.evaluated,
            "one hot document defeats global-max pruning ({} evaluated) but not block-max \
             skipping ({} evaluated)",
            global_stats.evaluated,
            block_stats.evaluated
        );

        // Threshold at a bar only the hot document clears: same story, and
        // the fixed bar prunes from the first candidate on.
        let (block_sel, block_stats) = ThresholdTraversal::new(gather_from(&block, &probes), 5.0)
            .unwrap()
            .run_with_stats(None);
        let (global_sel, global_stats) =
            ThresholdTraversal::new(gather_from(&global, &probes), 5.0)
                .unwrap()
                .run_with_stats(None);
        assert_eq!(block_sel, global_sel);
        assert_eq!(block_sel, reference_threshold(&block, &probes, 5.0));
        assert_eq!(block_sel.len(), hot.len(), "exactly the hot documents clear τ=5");
        assert!(block_stats.range_skips > 0);
        assert!(
            block_stats.evaluated * 4 < global_stats.evaluated,
            "threshold: block-max evaluated {} vs global-max {}",
            block_stats.evaluated,
            global_stats.evaluated
        );
    }
}
