//! Cooperative execution limits: deadline / candidate budgets threaded into
//! the operators that enumerate scoring candidates.
//!
//! An [`ExecLimits`] is created per *request* and carried by reference
//! through the execution context. The counters are relaxed atomics, so one
//! `ExecLimits` may be shared across the scoped worker threads of a sharded
//! or segmented execution: the request's budget then bounds the request as a
//! whole, not each worker. Operators that score candidates call
//! [`charge_candidate`](ExecLimits::charge_candidate) *before* evaluating
//! each one and stop cleanly when it returns `false`, leaving whatever they
//! have produced so far as the **anytime answer**: every emitted `(tid,
//! score)` pair is fully scored (bit-identical to the exhaustive run's entry
//! for that tid), the budget only truncates *which* candidates were visited.
//!
//! Exhaustion is sticky: once a cap trips, every later charge refuses, so a
//! multi-operator pipeline (or a multi-shard execution sharing one
//! `ExecLimits`) stops everywhere without re-checking clocks.
//!
//! Two caps exist:
//!
//! * `max_candidates` — a hard count of scored candidates, checked on every
//!   charge (deterministic under serial execution: a given corpus/query/cap
//!   always visits the same candidate prefix, so partial results are
//!   byte-stable; under concurrent sharing the *total* stays exact — a
//!   compare-exchange loop grants exactly `max` charges — but which worker
//!   wins each slot is scheduling-dependent).
//! * `deadline` — a wall-clock bound. While less than half the deadline has
//!   elapsed it is polled every [`DEADLINE_CHECK_MASK`]+1 charges to keep
//!   `Instant::now` off the per-candidate hot path; once a poll observes the
//!   halfway point, **every** subsequent charge polls, so a request
//!   verifying expensive candidates (edit distance, GES) overshoots its
//!   deadline by at most one in-flight verification — not by 63 of them.
//!   (Inherently nondeterministic in *where* it cuts, but every cut point is
//!   a valid anytime answer.)
//!
//! An `ExecLimits` may also carry a [`SharedBar`] (see
//! [`with_topk_bar`](ExecLimits::with_topk_bar)): concurrent bounded top-k
//! traversals sharing the limits then exchange their running θ through it,
//! pruning against the best k-th-score bound published by *any* worker.

use crate::topk::SharedBar;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the deadline is polled on the cheap path: on every charge where
/// `candidates & MASK == 0` (so the very first charge always polls — an
/// already-expired deadline stops the operator before any work). Once a poll
/// lands past the deadline's halfway point the mask no longer applies and
/// every charge polls.
const DEADLINE_CHECK_MASK: u64 = 63;

/// Per-request cooperative budget. See the module docs.
#[derive(Debug)]
pub struct ExecLimits {
    start: Instant,
    deadline: Option<Instant>,
    /// The deadline's halfway point: the instant after which the polling
    /// mask is abandoned and every charge checks the clock.
    half_deadline: Option<Instant>,
    max_candidates: Option<u64>,
    candidates: AtomicU64,
    postings: AtomicU64,
    exhausted: AtomicBool,
    /// Sticky flag: a deadline poll has observed `half_deadline` passing.
    past_half: AtomicBool,
    topk_bar: Option<Arc<SharedBar>>,
}

/// What one limited execution actually did — attached to degraded results so
/// callers can report how far the operator got before the budget cut it off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Candidates that reached the scoring path.
    pub candidates: u64,
    /// Posting entries consumed while scoring them.
    pub postings: u64,
    /// Wall-clock time since the limits were created.
    pub elapsed: Duration,
    /// Whether any cap tripped (the result is a partial, anytime answer).
    pub exhausted: bool,
}

impl ExecLimits {
    /// Start the budget clock now. `deadline` is relative to this call.
    pub fn new(deadline: Option<Duration>, max_candidates: Option<u64>) -> Self {
        let start = Instant::now();
        ExecLimits {
            start,
            deadline: deadline.map(|d| start + d),
            half_deadline: deadline.map(|d| start + d / 2),
            max_candidates,
            candidates: AtomicU64::new(0),
            postings: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
            past_half: AtomicBool::new(false),
            topk_bar: None,
        }
    }

    /// A budget with no caps: charges always succeed, only the counters run.
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// Attach a shared top-k θ bar: bounded top-k traversals executing under
    /// these limits will prune against `max(local θ, bar)` and publish their
    /// own θ into it. Used by sharded execution, where every shard worker
    /// shares one `ExecLimits` (and therefore one bar).
    pub fn with_topk_bar(mut self, bar: Arc<SharedBar>) -> Self {
        self.topk_bar = Some(bar);
        self
    }

    /// The shared θ bar, if one is attached.
    #[inline]
    pub fn topk_bar(&self) -> Option<&SharedBar> {
        self.topk_bar.as_deref()
    }

    /// Ask permission to score one more candidate. `true` means go ahead
    /// (and the candidate is counted); `false` means a cap has tripped — the
    /// operator must stop and return what it has. Counted candidates are
    /// exactly the scored ones: a refused charge is not counted, and with a
    /// `max_candidates` cap exactly `max` charges are granted even when the
    /// limits are shared across threads.
    #[inline]
    pub fn charge_candidate(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        if let Some(deadline) = self.deadline {
            let every = self.past_half.load(Ordering::Relaxed);
            if every || self.candidates.load(Ordering::Relaxed) & DEADLINE_CHECK_MASK == 0 {
                let now = Instant::now();
                if now >= deadline {
                    self.exhausted.store(true, Ordering::Relaxed);
                    return false;
                }
                if !every && self.half_deadline.is_some_and(|half| now >= half) {
                    self.past_half.store(true, Ordering::Relaxed);
                }
            }
        }
        if let Some(max) = self.max_candidates {
            // Compare-exchange so concurrent sharers together get exactly
            // `max` grants — a fetch_add would overcount refused charges.
            let mut n = self.candidates.load(Ordering::Relaxed);
            loop {
                if n >= max {
                    self.exhausted.store(true, Ordering::Relaxed);
                    return false;
                }
                match self.candidates.compare_exchange_weak(
                    n,
                    n + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(current) => n = current,
                }
            }
        } else {
            self.candidates.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Record `n` posting entries consumed (pure accounting, never refuses).
    #[inline]
    pub fn charge_postings(&self, n: u64) {
        self.postings.fetch_add(n, Ordering::Relaxed);
    }

    /// Trip the budget unconditionally (fault injection / forced
    /// degradation). Every later charge refuses.
    pub fn force_exhaust(&self) {
        self.exhausted.store(true, Ordering::Relaxed);
    }

    /// Whether any cap has tripped so far.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Snapshot the work counters (see [`ExecReport`]).
    pub fn report(&self) -> ExecReport {
        ExecReport {
            candidates: self.candidates.load(Ordering::Relaxed),
            postings: self.postings.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let l = ExecLimits::unlimited();
        for _ in 0..10_000 {
            assert!(l.charge_candidate());
        }
        let r = l.report();
        assert_eq!(r.candidates, 10_000);
        assert!(!r.exhausted);
    }

    #[test]
    fn candidate_cap_grants_exactly_max_then_sticks() {
        let l = ExecLimits::new(None, Some(3));
        assert!(l.charge_candidate());
        assert!(l.charge_candidate());
        assert!(l.charge_candidate());
        assert!(!l.charge_candidate());
        assert!(!l.charge_candidate()); // sticky
        let r = l.report();
        assert_eq!(r.candidates, 3); // refused charges are not counted
        assert!(r.exhausted);
        assert!(l.exhausted());
    }

    #[test]
    fn candidate_cap_is_exact_when_shared_across_threads() {
        let l = ExecLimits::new(None, Some(1000));
        let granted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..600 {
                        if l.charge_candidate() {
                            granted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(granted.load(Ordering::Relaxed), 1000);
        assert_eq!(l.report().candidates, 1000);
        assert!(l.exhausted());
    }

    #[test]
    fn expired_deadline_refuses_the_first_charge() {
        let l = ExecLimits::new(Some(Duration::ZERO), None);
        assert!(!l.charge_candidate());
        assert!(l.exhausted());
        assert_eq!(l.report().candidates, 0);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let l = ExecLimits::new(Some(Duration::from_secs(3600)), None);
        for _ in 0..1000 {
            assert!(l.charge_candidate());
        }
        assert!(!l.exhausted());
    }

    /// Satellite regression: past the deadline's halfway point every charge
    /// polls the clock, so the first charge after expiry refuses — the old
    /// mask-only polling could grant up to 63 post-deadline verifications
    /// when the count sat mid-mask.
    #[test]
    fn past_half_deadline_the_first_expired_charge_refuses() {
        let deadline = Duration::from_millis(40);
        let l = ExecLimits::new(Some(deadline), None);
        // Charge through the first half: the tight loop polls every 64
        // charges, so a poll lands past the halfway point well before the
        // deadline and flips the every-charge mode on.
        while l.report().elapsed < deadline / 2 + Duration::from_millis(5) {
            assert!(l.charge_candidate(), "deadline must not trip before expiry");
        }
        // Park the count mid-mask: under the old scheme the next 63 charges
        // would skip the clock entirely.
        while l.report().candidates & DEADLINE_CHECK_MASK != 1 {
            assert!(l.charge_candidate());
        }
        let before = l.report().candidates;
        std::thread::sleep(deadline); // comfortably past expiry now
        assert!(
            !l.charge_candidate(),
            "first charge after expiry must refuse once past half-deadline"
        );
        assert!(l.exhausted());
        assert_eq!(l.report().candidates, before, "refused charges are not counted");
    }

    #[test]
    fn force_exhaust_is_sticky() {
        let l = ExecLimits::unlimited();
        assert!(l.charge_candidate());
        l.force_exhaust();
        assert!(!l.charge_candidate());
        assert_eq!(l.report().candidates, 1);
        assert!(l.report().exhausted);
    }

    #[test]
    fn postings_are_pure_accounting() {
        let l = ExecLimits::new(None, Some(1));
        l.charge_postings(5);
        assert!(l.charge_candidate());
        assert!(!l.charge_candidate());
        l.charge_postings(2);
        assert_eq!(l.report().postings, 7);
    }

    #[test]
    fn topk_bar_rides_along_and_stays_shared() {
        let bar = Arc::new(SharedBar::new());
        let l = ExecLimits::unlimited().with_topk_bar(Arc::clone(&bar));
        assert!(ExecLimits::unlimited().topk_bar().is_none());
        l.topk_bar().expect("bar attached").raise(4.25);
        assert_eq!(bar.get(), 4.25);
    }
}
