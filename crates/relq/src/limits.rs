//! Cooperative execution limits: deadline / candidate budgets threaded into
//! the operators that enumerate scoring candidates.
//!
//! An [`ExecLimits`] is created per execution (never shared across threads —
//! the counters are plain [`Cell`]s) and carried by reference through the
//! execution context. Operators that score candidates call
//! [`charge_candidate`](ExecLimits::charge_candidate) *before* evaluating
//! each one and stop cleanly when it returns `false`, leaving whatever they
//! have produced so far as the **anytime answer**: every emitted `(tid,
//! score)` pair is fully scored (bit-identical to the exhaustive run's entry
//! for that tid), the budget only truncates *which* candidates were visited.
//!
//! Exhaustion is sticky: once a cap trips, every later charge refuses, so a
//! multi-operator pipeline (or a multi-segment live query sharing one
//! `ExecLimits`) stops everywhere without re-checking clocks.
//!
//! Two caps exist:
//!
//! * `max_candidates` — a hard count of scored candidates, checked on every
//!   charge (deterministic: a given corpus/query/cap always visits the same
//!   candidate prefix, so partial results are byte-stable).
//! * `deadline` — a wall-clock bound, checked every
//!   [`DEADLINE_CHECK_MASK`]+1 charges to keep `Instant::now` off the
//!   per-candidate hot path (inherently nondeterministic in *where* it cuts,
//!   but every cut point is a valid anytime answer).

use std::cell::Cell;
use std::time::{Duration, Instant};

/// How often the deadline is polled: on every charge where
/// `candidates & MASK == 0` (so the very first charge always polls —
/// an already-expired deadline stops the operator before any work).
const DEADLINE_CHECK_MASK: u64 = 63;

/// Per-execution cooperative budget. See the module docs.
#[derive(Debug)]
pub struct ExecLimits {
    start: Instant,
    deadline: Option<Instant>,
    max_candidates: Option<u64>,
    candidates: Cell<u64>,
    postings: Cell<u64>,
    exhausted: Cell<bool>,
}

/// What one limited execution actually did — attached to degraded results so
/// callers can report how far the operator got before the budget cut it off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Candidates that reached the scoring path.
    pub candidates: u64,
    /// Posting entries consumed while scoring them.
    pub postings: u64,
    /// Wall-clock time since the limits were created.
    pub elapsed: Duration,
    /// Whether any cap tripped (the result is a partial, anytime answer).
    pub exhausted: bool,
}

impl ExecLimits {
    /// Start the budget clock now. `deadline` is relative to this call.
    pub fn new(deadline: Option<Duration>, max_candidates: Option<u64>) -> Self {
        let start = Instant::now();
        ExecLimits {
            start,
            deadline: deadline.map(|d| start + d),
            max_candidates,
            candidates: Cell::new(0),
            postings: Cell::new(0),
            exhausted: Cell::new(false),
        }
    }

    /// A budget with no caps: charges always succeed, only the counters run.
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// Ask permission to score one more candidate. `true` means go ahead
    /// (and the candidate is counted); `false` means a cap has tripped — the
    /// operator must stop and return what it has. Counted candidates are
    /// exactly the scored ones: a refused charge is not counted.
    #[inline]
    pub fn charge_candidate(&self) -> bool {
        if self.exhausted.get() {
            return false;
        }
        let n = self.candidates.get();
        if let Some(max) = self.max_candidates {
            if n >= max {
                self.exhausted.set(true);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if n & DEADLINE_CHECK_MASK == 0 && Instant::now() >= deadline {
                self.exhausted.set(true);
                return false;
            }
        }
        self.candidates.set(n + 1);
        true
    }

    /// Record `n` posting entries consumed (pure accounting, never refuses).
    #[inline]
    pub fn charge_postings(&self, n: u64) {
        self.postings.set(self.postings.get() + n);
    }

    /// Trip the budget unconditionally (fault injection / forced
    /// degradation). Every later charge refuses.
    pub fn force_exhaust(&self) {
        self.exhausted.set(true);
    }

    /// Whether any cap has tripped so far.
    pub fn exhausted(&self) -> bool {
        self.exhausted.get()
    }

    /// Snapshot the work counters (see [`ExecReport`]).
    pub fn report(&self) -> ExecReport {
        ExecReport {
            candidates: self.candidates.get(),
            postings: self.postings.get(),
            elapsed: self.start.elapsed(),
            exhausted: self.exhausted.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let l = ExecLimits::unlimited();
        for _ in 0..10_000 {
            assert!(l.charge_candidate());
        }
        let r = l.report();
        assert_eq!(r.candidates, 10_000);
        assert!(!r.exhausted);
    }

    #[test]
    fn candidate_cap_grants_exactly_max_then_sticks() {
        let l = ExecLimits::new(None, Some(3));
        assert!(l.charge_candidate());
        assert!(l.charge_candidate());
        assert!(l.charge_candidate());
        assert!(!l.charge_candidate());
        assert!(!l.charge_candidate()); // sticky
        let r = l.report();
        assert_eq!(r.candidates, 3); // refused charges are not counted
        assert!(r.exhausted);
        assert!(l.exhausted());
    }

    #[test]
    fn expired_deadline_refuses_the_first_charge() {
        let l = ExecLimits::new(Some(Duration::ZERO), None);
        assert!(!l.charge_candidate());
        assert!(l.exhausted());
        assert_eq!(l.report().candidates, 0);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let l = ExecLimits::new(Some(Duration::from_secs(3600)), None);
        for _ in 0..1000 {
            assert!(l.charge_candidate());
        }
        assert!(!l.exhausted());
    }

    #[test]
    fn force_exhaust_is_sticky() {
        let l = ExecLimits::unlimited();
        assert!(l.charge_candidate());
        l.force_exhaust();
        assert!(!l.charge_candidate());
        assert_eq!(l.report().candidates, 1);
        assert!(l.report().exhausted);
    }

    #[test]
    fn postings_are_pure_accounting() {
        let l = ExecLimits::new(None, Some(1));
        l.charge_postings(5);
        assert!(l.charge_candidate());
        assert!(!l.charge_candidate());
        l.charge_postings(2);
        assert_eq!(l.report().postings, 7);
    }
}
