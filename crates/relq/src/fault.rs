//! A process-global fault-injection hook for the traversal hot paths.
//!
//! Production code never pays more than one relaxed atomic load per site:
//! the hook is behind an [`AtomicBool`] that is only set while a harness
//! (e.g. `dasp_core::fault`) has installed a callback. The callback is a
//! plain `fn` pointer — any state it needs (seeds, rates, counters) lives on
//! the installing side — and it may panic (injected crash) or sleep
//! (injected delay); the call sites sit *between* candidates, so a panic
//! unwinding from one never leaves a partially-scored result behind.
//!
//! Installation is process-global and intended for tests that serialize
//! themselves around it; `set_fault_hook(None)` restores the inert state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HOOK: RwLock<Option<fn(&'static str)>> = RwLock::new(None);

/// Invoke the installed fault hook (if any) at a named site. Inert — one
/// relaxed load — unless a harness has installed a hook.
#[inline]
pub fn fault_point(site: &'static str) {
    if ENABLED.load(Ordering::Relaxed) {
        fire(site);
    }
}

#[cold]
fn fire(site: &'static str) {
    // Recover from poisoning: an injected panic unwinding through a reader
    // cannot poison (readers don't), but be safe against a panicking writer.
    let hook = *HOOK.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(hook) = hook {
        hook(site);
    }
}

/// Install (`Some`) or clear (`None`) the process-global fault hook.
pub fn set_fault_hook(hook: Option<fn(&'static str)>) {
    let mut slot = HOOK.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = hook;
    ENABLED.store(hook.is_some(), Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static HITS: AtomicU64 = AtomicU64::new(0);

    fn count(_site: &'static str) {
        HITS.fetch_add(1, Ordering::SeqCst);
    }

    #[test]
    fn hook_fires_only_while_installed() {
        fault_point("relq.test"); // inert: no hook
        assert_eq!(HITS.load(Ordering::SeqCst), 0);
        set_fault_hook(Some(count));
        fault_point("relq.test");
        fault_point("relq.test");
        set_fault_hook(None);
        fault_point("relq.test");
        assert_eq!(HITS.load(Ordering::SeqCst), 2);
    }
}
