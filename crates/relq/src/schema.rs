//! Column and schema definitions.

use crate::error::{RelqError, Result};
use crate::value::DataType;
use std::fmt;

/// A single named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered collection of fields describing a table or intermediate result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from name/type tuples.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema { fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect() }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| RelqError::UnknownColumn(name.to_string()))
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Concatenate two schemas (used by joins). Columns appearing in both
    /// inputs get a `suffix` appended on the right side so names stay unique.
    pub fn join(&self, right: &Schema, suffix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if self.contains(&f.name) {
                format!("{}{}", f.name, suffix)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.dtype));
        }
        Schema { fields }
    }

    /// Ensure two schemas are union-compatible (same arity and types).
    pub fn check_union_compatible(&self, other: &Schema) -> Result<()> {
        if self.len() != other.len() {
            return Err(RelqError::SchemaMismatch(format!(
                "union arity mismatch: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if a.dtype != b.dtype {
                return Err(RelqError::SchemaMismatch(format!(
                    "union type mismatch on column {}: {} vs {}",
                    a.name, a.dtype, b.dtype
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> =
            self.fields.iter().map(|c| format!("{}:{}", c.name, c.dtype)).collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[("tid", DataType::Int), ("token", DataType::Str)])
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("tid").unwrap(), 0);
        assert_eq!(s.index_of("token").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert!(s.contains("token"));
        assert!(!s.contains("weight"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_renames_duplicates() {
        let left = sample();
        let right = Schema::from_pairs(&[("token", DataType::Str), ("weight", DataType::Float)]);
        let joined = left.join(&right, "_r");
        assert_eq!(joined.names(), vec!["tid", "token", "token_r", "weight"]);
    }

    #[test]
    fn union_compat_checks_types_and_arity() {
        let a = sample();
        let b = sample();
        assert!(a.check_union_compatible(&b).is_ok());
        let c = Schema::from_pairs(&[("tid", DataType::Int)]);
        assert!(a.check_union_compatible(&c).is_err());
        let d = Schema::from_pairs(&[("tid", DataType::Str), ("token", DataType::Str)]);
        assert!(a.check_union_compatible(&d).is_err());
    }

    #[test]
    fn display_lists_columns() {
        assert_eq!(sample().to_string(), "(tid:Int, token:Str)");
    }
}
