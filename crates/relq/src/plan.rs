//! Logical query plans and a fluent builder.
//!
//! Plans are deliberately logical-only: the executor in [`crate::exec`]
//! evaluates them directly (hash joins, hash aggregation). This mirrors how
//! the paper expresses each similarity predicate as a declarative statement
//! over token/weight tables, leaving execution strategy to the engine.

use crate::agg::{AggFunc, Aggregate};
use crate::expr::Expr;
use crate::table::Table;

/// Direction for a sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Ascending,
    Descending,
}

/// A projection item: expression plus output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectItem {
    pub expr: Expr,
    pub alias: String,
}

impl ProjectItem {
    pub fn new(expr: Expr, alias: &str) -> Self {
        ProjectItem { expr, alias: alias.to_string() }
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named table from the catalog (a shared handle — never a copy).
    Scan { table: String },
    /// Use an inline, already-materialized table (e.g. query-time token table).
    Values { table: Table },
    /// A named table parameter of a prepared plan, bound per execution via
    /// [`Bindings::with_table`](crate::Bindings::with_table).
    Param { name: String },
    /// Probe the persistent index of catalog table `base` (built by
    /// [`Catalog::register_indexed`](crate::Catalog::register_indexed)) with
    /// the key values of the `probe` input: for each probe row, only the base
    /// rows whose `base_keys` equal its `probe_keys` are visited. Output rows
    /// are `base ++ probe` columns (probe columns colliding with base names
    /// get `suffix`), exactly like `HashJoin { left: Scan(base), right:
    /// probe }` — but the base relation is never scanned or re-hashed.
    IndexJoin {
        base: String,
        base_keys: Vec<String>,
        probe: Box<Plan>,
        probe_keys: Vec<String>,
        suffix: String,
    },
    /// Keep rows where the predicate evaluates to true.
    Filter { input: Box<Plan>, predicate: Expr },
    /// Compute output columns from expressions.
    Project { input: Box<Plan>, items: Vec<ProjectItem> },
    /// Inner hash equi-join on pairs of key columns. Right-side columns whose
    /// names collide with left-side names are suffixed with `suffix`.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        suffix: String,
    },
    /// Hash aggregation: GROUP BY `group_by` computing `aggregates`.
    Aggregate { input: Box<Plan>, group_by: Vec<String>, aggregates: Vec<Aggregate> },
    /// ORDER BY.
    Sort { input: Box<Plan>, keys: Vec<(String, SortOrder)> },
    /// LIMIT.
    Limit { input: Box<Plan>, count: usize },
    /// The `k` best rows under a multi-key ordering, equivalent to
    /// `Sort { keys } + Limit { k }` (ties beyond the key list keep input
    /// order) but executed with a bounded heap: `O(n log k)` time and `O(k)`
    /// kept rows instead of a full sort. `k` is an expression so prepared
    /// plans can take it as a per-execution scalar parameter; it must not
    /// reference input columns. This is the pushdown target for the
    /// predicate layer's `Exec::TopK`: stacked on the fused
    /// `Aggregate(IndexJoin)` pipeline it selects directly from the
    /// aggregated candidate stream, so top-k cost scales with the number of
    /// candidates kept, never with the base-relation size.
    TopK { input: Box<Plan>, k: Expr, keys: Vec<(String, SortOrder)> },
    /// Score-bounded top-k over the posting lists of catalog table `base`
    /// (built by [`Catalog::register_posting`](crate::Catalog::register_posting)):
    /// the early-terminating alternative to `TopK` for scores that are
    /// monotone sums of non-negative per-token contributions. The `probe`
    /// input supplies one row per query token — `token_col` joins the posting
    /// lists, `factor_col` scales their contributions (`None` = 1.0) — and
    /// the operator emits the `k` best `(tid, score)` rows, score-descending
    /// with ties by ascending tid, where
    /// `score(tid) = Σ_probe factor · weight(base, tid, token)`.
    ///
    /// Execution is a document-at-a-time max-score/WAND traversal: a k-sized
    /// heap maintains the running threshold θ, cursors are ordered by their
    /// list upper bound (`factor · max weight`), and any tid whose remaining
    /// upper bounds cannot beat θ is skipped without being scored — top-k
    /// cost becomes sublinear in the candidate count. Every emitted score is
    /// re-accumulated in probe order, so results are bit-identical to the
    /// equivalent `Aggregate + TopK` pipeline whenever scores are distinct;
    /// exact score ties may resolve to a different member of the tie class.
    /// The naive executor lowers this node to exhaustive scoring plus
    /// sort-and-truncate (byte-identical to the heap pipeline).
    TopKBounded {
        base: String,
        probe: Box<Plan>,
        token_col: String,
        factor_col: Option<String>,
        k: Expr,
    },
    /// Score-bounded *threshold* selection over the posting lists of catalog
    /// table `base`: every `(tid, score)` with `score ≥ τ`, score-descending
    /// with ties by ascending tid, where `score(tid) = Σ_probe factor ·
    /// weight(base, tid, token)` exactly as in [`Plan::TopKBounded`]. The
    /// early-terminating alternative to `Filter(score ≥ τ)` over the
    /// exhaustive aggregation pipeline for the same monotone-sum scores.
    ///
    /// Execution is the same document-at-a-time max-score traversal with the
    /// threshold **fixed** at τ from the start: no heap, the non-essential
    /// list prefix (lists whose summed upper bounds cannot reach τ) is
    /// computed once, and candidates appearing only there are never visited.
    /// Pruning carries the shared relative slack, survivors are re-scored in
    /// probe order, and admission is the exact `score ≥ τ` test — so,
    /// unlike top-k (where the running θ creates a tie class at the k
    /// boundary), results are **bit-identical** to the exhaustive
    /// score-then-filter pipeline for every τ, including non-finite ones.
    /// The naive executor lowers this node to exhaustive probe-major scoring
    /// plus the same exact filter, byte-identical to the traversal.
    ///
    /// `tau` is a column-free scalar expression (a literal or a bound
    /// parameter, possibly transformed — e.g. `param(τ).ln()` for scores
    /// selected in log space), evaluated once per execution.
    ThresholdBounded {
        base: String,
        probe: Box<Plan>,
        token_col: String,
        factor_col: Option<String>,
        tau: Expr,
    },
    /// SELECT DISTINCT over all columns.
    Distinct { input: Box<Plan> },
    /// UNION ALL of two union-compatible inputs.
    UnionAll { left: Box<Plan>, right: Box<Plan> },
}

impl Plan {
    /// Scan a catalog table.
    pub fn scan(table: &str) -> Plan {
        Plan::Scan { table: table.to_string() }
    }

    /// Wrap a materialized table as a plan leaf.
    pub fn values(table: Table) -> Plan {
        Plan::Values { table }
    }

    /// A named table parameter (see [`crate::PreparedPlan`]).
    pub fn param(name: &str) -> Plan {
        Plan::Param { name: name.to_string() }
    }

    /// Probe the index of catalog table `base` on `base_keys` with the
    /// `probe` plan's `probe_keys` (suffix `_r` for colliding probe columns).
    pub fn index_join(base: &str, base_keys: &[&str], probe: Plan, probe_keys: &[&str]) -> Plan {
        Plan::IndexJoin {
            base: base.to_string(),
            base_keys: base_keys.iter().map(|s| s.to_string()).collect(),
            probe: Box::new(probe),
            probe_keys: probe_keys.iter().map(|s| s.to_string()).collect(),
            suffix: "_r".to_string(),
        }
    }

    /// Filter rows by a boolean expression.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter { input: Box::new(self), predicate }
    }

    /// Project expressions to named output columns.
    pub fn project(self, items: Vec<(Expr, &str)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            items: items.into_iter().map(|(e, a)| ProjectItem::new(e, a)).collect(),
        }
    }

    /// Inner equi-join with another plan on equally named key lists.
    pub fn join_on(self, right: Plan, left_keys: &[&str], right_keys: &[&str]) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            suffix: "_r".to_string(),
        }
    }

    /// Inner equi-join with an explicit rename suffix for colliding columns.
    pub fn join_on_with_suffix(
        self,
        right: Plan,
        left_keys: &[&str],
        right_keys: &[&str],
        suffix: &str,
    ) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            suffix: suffix.to_string(),
        }
    }

    /// GROUP BY the named columns and compute aggregates.
    pub fn aggregate(self, group_by: &[&str], aggregates: Vec<(AggFunc, &str)>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggregates: aggregates.into_iter().map(|(f, alias)| Aggregate::new(f, alias)).collect(),
        }
    }

    /// ORDER BY one column.
    pub fn sort_by(self, column: &str, order: SortOrder) -> Plan {
        Plan::Sort { input: Box::new(self), keys: vec![(column.to_string(), order)] }
    }

    /// ORDER BY multiple columns.
    pub fn sort_by_many(self, keys: Vec<(&str, SortOrder)>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys: keys.into_iter().map(|(c, o)| (c.to_string(), o)).collect(),
        }
    }

    /// LIMIT the number of output rows.
    pub fn limit(self, count: usize) -> Plan {
        Plan::Limit { input: Box::new(self), count }
    }

    /// The `k` best rows under the given ordering (heap-based; see
    /// [`Plan::TopK`]). `k` may be a literal or a scalar parameter.
    pub fn top_k(self, k: Expr, keys: Vec<(&str, SortOrder)>) -> Plan {
        Plan::TopK {
            input: Box::new(self),
            k,
            keys: keys.into_iter().map(|(c, o)| (c.to_string(), o)).collect(),
        }
    }

    /// Score-bounded top-k over the posting lists of `base`, probed by the
    /// `probe` plan's `(token_col, factor_col)` rows (see
    /// [`Plan::TopKBounded`]). `k` may be a literal or a scalar parameter.
    pub fn top_k_bounded(
        base: &str,
        probe: Plan,
        token_col: &str,
        factor_col: Option<&str>,
        k: Expr,
    ) -> Plan {
        Plan::TopKBounded {
            base: base.to_string(),
            probe: Box::new(probe),
            token_col: token_col.to_string(),
            factor_col: factor_col.map(str::to_string),
            k,
        }
    }

    /// Score-bounded threshold selection over the posting lists of `base`,
    /// probed by the `probe` plan's `(token_col, factor_col)` rows (see
    /// [`Plan::ThresholdBounded`]). `tau` may be a literal or a scalar
    /// parameter expression.
    pub fn threshold_bounded(
        base: &str,
        probe: Plan,
        token_col: &str,
        factor_col: Option<&str>,
        tau: Expr,
    ) -> Plan {
        Plan::ThresholdBounded {
            base: base.to_string(),
            probe: Box::new(probe),
            token_col: token_col.to_string(),
            factor_col: factor_col.map(str::to_string),
            tau,
        }
    }

    /// SELECT DISTINCT.
    pub fn distinct(self) -> Plan {
        Plan::Distinct { input: Box::new(self) }
    }

    /// UNION ALL.
    pub fn union_all(self, right: Plan) -> Plan {
        Plan::UnionAll { left: Box::new(self), right: Box::new(right) }
    }

    /// Number of nodes in the plan tree (used in tests and plan statistics).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::Values { .. } | Plan::Param { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Distinct { input } => input.node_count(),
            Plan::IndexJoin { probe, .. }
            | Plan::TopKBounded { probe, .. }
            | Plan::ThresholdBounded { probe, .. } => probe.node_count(),
            Plan::HashJoin { left, right, .. } | Plan::UnionAll { left, right } => {
                left.node_count() + right.node_count()
            }
        }
    }

    /// Names of the catalog tables referenced by the plan.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Plan::Scan { table } => out.push(table.clone()),
            Plan::Values { .. } | Plan::Param { .. } => {}
            Plan::IndexJoin { base, probe, .. }
            | Plan::TopKBounded { base, probe, .. }
            | Plan::ThresholdBounded { base, probe, .. } => {
                out.push(base.clone());
                probe.collect_tables(out);
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Distinct { input } => input.collect_tables(out),
            Plan::HashJoin { left, right, .. } | Plan::UnionAll { left, right } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn builder_constructs_expected_tree() {
        let plan = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .sort_by("score", SortOrder::Descending)
            .limit(10);
        // scan + scan + join + aggregate + sort + limit
        assert_eq!(plan.node_count(), 6);
        let tables = plan.referenced_tables();
        assert_eq!(tables, vec!["base_tokens".to_string(), "query_tokens".to_string()]);
    }

    #[test]
    fn index_join_and_param_nodes() {
        let plan = Plan::index_join("base_tokens", &["token"], Plan::param("query"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]);
        // index_join + param + aggregate
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.referenced_tables(), vec!["base_tokens".to_string()]);
        match &plan {
            Plan::Aggregate { input, .. } => match input.as_ref() {
                Plan::IndexJoin { base, base_keys, probe_keys, suffix, .. } => {
                    assert_eq!(base, "base_tokens");
                    assert_eq!(base_keys, &["token".to_string()]);
                    assert_eq!(probe_keys, &["token".to_string()]);
                    assert_eq!(suffix, "_r");
                }
                other => panic!("expected index join, got {other:?}"),
            },
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn top_k_node_carries_keys_and_parameterized_k() {
        use crate::expr::param;
        let plan = Plan::scan("scores").top_k(
            param("k"),
            vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)],
        );
        assert_eq!(plan.node_count(), 2);
        assert_eq!(plan.referenced_tables(), vec!["scores".to_string()]);
        match plan {
            Plan::TopK { k, keys, .. } => {
                assert!(k.has_params());
                assert_eq!(
                    keys,
                    vec![
                        ("score".to_string(), SortOrder::Descending),
                        ("tid".to_string(), SortOrder::Ascending)
                    ]
                );
            }
            other => panic!("expected TopK, got {other:?}"),
        }
    }

    #[test]
    fn bounded_nodes_carry_their_scalar_parameters() {
        use crate::expr::param;
        let top = Plan::top_k_bounded("w", Plan::param("q"), "token", Some("factor"), param("k"));
        let thr = Plan::threshold_bounded("w", Plan::param("q"), "token", None, param("tau"));
        for plan in [&top, &thr] {
            assert_eq!(plan.node_count(), 2);
            assert_eq!(plan.referenced_tables(), vec!["w".to_string()]);
        }
        match thr {
            Plan::ThresholdBounded { token_col, factor_col, tau, .. } => {
                assert_eq!(token_col, "token");
                assert_eq!(factor_col, None);
                assert!(tau.has_params());
            }
            other => panic!("expected ThresholdBounded, got {other:?}"),
        }
    }

    #[test]
    fn filter_and_project_nodes() {
        let plan = Plan::scan("t")
            .filter(col("x").gt(lit(1i64)))
            .project(vec![(col("x").mul(lit(2i64)), "y")]);
        assert_eq!(plan.node_count(), 3);
        match plan {
            Plan::Project { items, .. } => assert_eq!(items[0].alias, "y"),
            _ => panic!("expected project"),
        }
    }
}
