//! Aggregate functions used by GROUP BY plans.

use crate::error::Result;
use crate::expr::Expr;
use crate::value::{DataType, Value};

/// Supported aggregate functions.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows in the group.
    CountStar,
    /// `COUNT(expr)` — counts rows where `expr` is not NULL.
    Count(Expr),
    /// `COUNT(DISTINCT expr)`.
    CountDistinct(Expr),
    /// `SUM(expr)`.
    Sum(Expr),
    /// `MIN(expr)`.
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
    /// `AVG(expr)`.
    Avg(Expr),
}

/// An aggregate paired with its output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    pub func: AggFunc,
    pub alias: String,
}

impl Aggregate {
    pub fn new(func: AggFunc, alias: &str) -> Self {
        Aggregate { func, alias: alias.to_string() }
    }

    /// Output data type of the aggregate.
    pub fn output_type(&self) -> DataType {
        match self.func {
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::CountDistinct(_) => DataType::Int,
            _ => DataType::Float,
        }
    }
}

/// Running accumulator for one aggregate in one group.
#[derive(Debug, Clone)]
pub(crate) enum Accumulator {
    Count(i64),
    CountDistinct(std::collections::HashSet<Value>),
    Sum { total: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { total: f64, count: i64 },
}

impl Accumulator {
    pub(crate) fn for_func(func: &AggFunc) -> Self {
        match func {
            AggFunc::CountStar | AggFunc::Count(_) => Accumulator::Count(0),
            AggFunc::CountDistinct(_) => Accumulator::CountDistinct(Default::default()),
            AggFunc::Sum(_) => Accumulator::Sum { total: 0.0, seen: false },
            AggFunc::Min(_) => Accumulator::Min(None),
            AggFunc::Max(_) => Accumulator::Max(None),
            AggFunc::Avg(_) => Accumulator::Avg { total: 0.0, count: 0 },
        }
    }

    /// Fold one evaluated value (`None` means COUNT(*), which ignores values).
    pub(crate) fn update(&mut self, value: Option<Value>) -> Result<()> {
        match self {
            Accumulator::Count(n) => match value {
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                Some(_) => {}
            },
            Accumulator::CountDistinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
            }
            Accumulator::Sum { total, seen } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v.as_f64()?;
                        *seen = true;
                    }
                }
            }
            Accumulator::Min(current) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match current {
                            None => true,
                            Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *current = Some(v);
                        }
                    }
                }
            }
            Accumulator::Max(current) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match current {
                            None => true,
                            Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *current = Some(v);
                        }
                    }
                }
            }
            Accumulator::Avg { total, count } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v.as_f64()?;
                        *count += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub(crate) fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::CountDistinct(set) => Value::Int(set.len() as i64),
            Accumulator::Sum { total, seen } => {
                if seen {
                    Value::Float(total)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) => v.unwrap_or(Value::Null),
            Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::Avg { total, count } => {
                if count > 0 {
                    Value::Float(total / count as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    #[test]
    fn count_star_counts_all_rows() {
        let mut acc = Accumulator::for_func(&AggFunc::CountStar);
        for _ in 0..5 {
            acc.update(None).unwrap();
        }
        assert_eq!(acc.finish(), Value::Int(5));
    }

    #[test]
    fn count_skips_nulls() {
        let mut acc = Accumulator::for_func(&AggFunc::Count(col("x")));
        acc.update(Some(Value::Int(1))).unwrap();
        acc.update(Some(Value::Null)).unwrap();
        acc.update(Some(Value::Int(2))).unwrap();
        assert_eq!(acc.finish(), Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let mut acc = Accumulator::for_func(&AggFunc::CountDistinct(col("x")));
        for v in ["a", "b", "a", "c"] {
            acc.update(Some(Value::Str(v.into()))).unwrap();
        }
        acc.update(Some(Value::Null)).unwrap();
        assert_eq!(acc.finish(), Value::Int(3));
    }

    #[test]
    fn sum_avg_min_max() {
        let vals = [2.0, 4.0, 6.0];
        let mut sum = Accumulator::for_func(&AggFunc::Sum(col("x")));
        let mut avg = Accumulator::for_func(&AggFunc::Avg(col("x")));
        let mut min = Accumulator::for_func(&AggFunc::Min(col("x")));
        let mut max = Accumulator::for_func(&AggFunc::Max(col("x")));
        for v in vals {
            for acc in [&mut sum, &mut avg, &mut min, &mut max] {
                acc.update(Some(Value::Float(v))).unwrap();
            }
        }
        assert_eq!(sum.finish(), Value::Float(12.0));
        assert_eq!(avg.finish(), Value::Float(4.0));
        assert_eq!(min.finish(), Value::Float(2.0));
        assert_eq!(max.finish(), Value::Float(6.0));
    }

    #[test]
    fn empty_groups_yield_null_or_zero() {
        assert_eq!(Accumulator::for_func(&AggFunc::CountStar).finish(), Value::Int(0));
        assert_eq!(Accumulator::for_func(&AggFunc::Sum(col("x"))).finish(), Value::Null);
        assert_eq!(Accumulator::for_func(&AggFunc::Avg(col("x"))).finish(), Value::Null);
        assert_eq!(Accumulator::for_func(&AggFunc::Min(col("x"))).finish(), Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(Aggregate::new(AggFunc::CountStar, "c").output_type(), DataType::Int);
        assert_eq!(Aggregate::new(AggFunc::Sum(col("x")), "s").output_type(), DataType::Float);
    }
}
