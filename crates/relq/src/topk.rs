//! A bounded heap for top-k selection under an arbitrary total order, plus
//! the shared θ bar that lets concurrent bounded traversals exchange their
//! running top-k thresholds.
//!
//! [`BoundedHeap`] keeps the `k` smallest elements under a caller-supplied
//! comparator (`Ordering::Less` = ranks earlier) and returns them in
//! comparator order. Offering `n` elements costs `O(n log k)` time and
//! `O(k)` space — the replacement for "sort everything, truncate to k" that
//! [`Plan::TopK`](crate::Plan::TopK) and the predicate layer's native top-k
//! paths use. When the comparator is a total order (callers break ties with
//! a unique final key, e.g. a row id), the result is element-for-element
//! identical to a full stable sort followed by `truncate(k)`.
//!
//! [`SharedBar`] is a monotone `AtomicU64` holding an order-preserving
//! encoding of an `f64` score ([`encode_score_key`]). Shard workers running
//! the bounded top-k traversal publish their local θ (the k-th best score so
//! far) with [`SharedBar::raise`] and prune against
//! `max(local θ, bar.get())`; because every published value is a *lower*
//! bound on the global k-th best score, the combined bar can only skip
//! candidates that cannot enter the global top k — the traversal stays
//! exact, only faster. The bar is deliberately racy (relaxed ordering, no
//! coordination beyond `fetch_max`): readers may observe a stale (lower)
//! value, which costs work but never correctness.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Map an `f64` score to a `u64` whose unsigned order matches the IEEE-754
/// total order of the floats: negative values have all bits flipped,
/// non-negative values have the sign bit set. The same trick the executor's
/// sort-key encoding uses, exposed here so the shared θ bar can live in one
/// `AtomicU64` and still be raised with `fetch_max`.
#[inline]
pub fn encode_score_key(score: f64) -> u64 {
    let bits = score.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Inverse of [`encode_score_key`].
#[inline]
pub fn decode_score_key(key: u64) -> f64 {
    let bits = if key & (1 << 63) != 0 { key ^ (1 << 63) } else { !key };
    f64::from_bits(bits)
}

/// A monotonically increasing score threshold shared between concurrent
/// bounded top-k traversals (see the module docs for the protocol and why
/// staleness is safe). Starts at `-∞` so an untouched bar never prunes.
#[derive(Debug)]
pub struct SharedBar {
    key: AtomicU64,
}

impl SharedBar {
    /// A bar that admits everything until the first [`raise`](Self::raise).
    pub fn new() -> Self {
        SharedBar { key: AtomicU64::new(encode_score_key(f64::NEG_INFINITY)) }
    }

    /// Publish a lower bound on the global k-th best score. The bar only
    /// moves up: raising it below the current value is a no-op.
    #[inline]
    pub fn raise(&self, score: f64) {
        self.key.fetch_max(encode_score_key(score), AtomicOrdering::Relaxed);
    }

    /// The highest score published so far (`-∞` before any raise).
    #[inline]
    pub fn get(&self) -> f64 {
        decode_score_key(self.key.load(AtomicOrdering::Relaxed))
    }
}

impl Default for SharedBar {
    fn default() -> Self {
        Self::new()
    }
}

/// Keeps the `cap` smallest elements under `cmp`, internally arranged as a
/// max-heap so the current worst kept element sits at the root.
pub struct BoundedHeap<T, F: Fn(&T, &T) -> Ordering> {
    cmp: F,
    cap: usize,
    data: Vec<T>,
}

impl<T, F: Fn(&T, &T) -> Ordering> BoundedHeap<T, F> {
    /// Create a heap keeping at most `cap` elements; `cmp` is the ranking
    /// order (`Less` = ranks earlier = kept in preference to `Greater`).
    pub fn new(cap: usize, cmp: F) -> Self {
        BoundedHeap { cmp, cap, data: Vec::with_capacity(cap.min(1024)) }
    }

    /// Number of elements currently kept.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The current worst kept element (the one the next better offer evicts).
    pub fn worst(&self) -> Option<&T> {
        self.data.first()
    }

    /// Offer one element: kept when the heap has room or when it ranks
    /// strictly before the current worst kept element (which is then evicted).
    pub fn offer(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        if self.data.len() < self.cap {
            self.data.push(item);
            self.sift_up(self.data.len() - 1);
        } else if (self.cmp)(&item, &self.data[0]) == Ordering::Less {
            self.data[0] = item;
            self.sift_down(0, self.data.len());
        }
    }

    /// Consume the heap, returning the kept elements in comparator order
    /// (best first). This is an in-place heapsort: the max-heap root (worst)
    /// swaps to the back repeatedly, leaving the vector ascending under `cmp`.
    pub fn into_sorted(mut self) -> Vec<T> {
        for end in (1..self.data.len()).rev() {
            self.data.swap(0, end);
            self.sift_down(0, end);
        }
        self.data
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if (self.cmp)(&self.data[idx], &self.data[parent]) == Ordering::Greater {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize, end: usize) {
        loop {
            let left = 2 * idx + 1;
            if left >= end {
                break;
            }
            let right = left + 1;
            let mut largest = idx;
            if (self.cmp)(&self.data[left], &self.data[largest]) == Ordering::Greater {
                largest = left;
            }
            if right < end
                && (self.cmp)(&self.data[right], &self.data[largest]) == Ordering::Greater
            {
                largest = right;
            }
            if largest == idx {
                break;
            }
            self.data.swap(idx, largest);
            idx = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random sequence (no rand dependency in relq).
    fn lcg_sequence(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 16
            })
            .collect()
    }

    fn top_k_by_sort(values: &[u64], k: usize) -> Vec<u64> {
        let mut sorted = values.to_vec();
        sorted.sort(); // stable
        sorted.truncate(k);
        sorted
    }

    #[test]
    fn matches_sort_then_truncate_for_all_k() {
        let values = lcg_sequence(42, 300);
        for k in [0, 1, 2, 7, 100, 299, 300, 500] {
            let mut heap = BoundedHeap::new(k, |a: &u64, b: &u64| a.cmp(b));
            for &v in &values {
                heap.offer(v);
            }
            assert_eq!(heap.into_sorted(), top_k_by_sort(&values, k), "k={k}");
        }
    }

    #[test]
    fn duplicate_keys_resolve_by_offer_order_with_index_tiebreak() {
        // Callers append a unique index as the final comparator key; with it,
        // the heap must equal stable-sort + truncate even under heavy ties.
        let values = [3u64, 1, 3, 1, 2, 2, 3, 1, 2];
        let indexed: Vec<(u64, usize)> = values.iter().copied().zip(0..).collect();
        let cmp = |a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0).then(a.1.cmp(&b.1));
        for k in 0..=values.len() {
            let mut heap = BoundedHeap::new(k, cmp);
            for &item in &indexed {
                heap.offer(item);
            }
            let mut expected = indexed.to_vec();
            expected.sort_by(cmp);
            expected.truncate(k);
            assert_eq!(heap.into_sorted(), expected, "k={k}");
        }
    }

    #[test]
    fn worst_and_len_track_the_kept_set() {
        let mut heap = BoundedHeap::new(2, |a: &i64, b: &i64| a.cmp(b));
        assert!(heap.is_empty());
        assert_eq!(heap.worst(), None);
        heap.offer(5);
        heap.offer(1);
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.worst(), Some(&5));
        heap.offer(3); // evicts 5
        assert_eq!(heap.worst(), Some(&3));
        heap.offer(9); // worse than worst: ignored
        assert_eq!(heap.into_sorted(), vec![1, 3]);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut heap = BoundedHeap::new(0, |a: &i64, b: &i64| a.cmp(b));
        heap.offer(1);
        assert!(heap.is_empty());
        assert!(heap.into_sorted().is_empty());
    }

    #[test]
    fn score_key_encoding_is_order_preserving_and_invertible() {
        let scores = [
            f64::NEG_INFINITY,
            -1e300,
            -3.5,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            0.25,
            1.0,
            7.5,
            1e300,
            f64::INFINITY,
        ];
        for pair in scores.windows(2) {
            assert!(
                encode_score_key(pair[0]) <= encode_score_key(pair[1]),
                "encoding must preserve order: {} vs {}",
                pair[0],
                pair[1]
            );
        }
        for &s in &scores {
            assert_eq!(decode_score_key(encode_score_key(s)).to_bits(), s.to_bits(), "{s}");
        }
        // -0.0 < 0.0 in the IEEE total order the encoding follows.
        assert!(encode_score_key(-0.0) < encode_score_key(0.0));
    }

    #[test]
    fn shared_bar_is_monotone_and_starts_open() {
        let bar = SharedBar::new();
        assert_eq!(bar.get(), f64::NEG_INFINITY);
        bar.raise(2.5);
        assert_eq!(bar.get(), 2.5);
        bar.raise(1.0); // lowering is a no-op
        assert_eq!(bar.get(), 2.5);
        bar.raise(3.75);
        assert_eq!(bar.get(), 3.75);
        bar.raise(f64::NEG_INFINITY);
        assert_eq!(bar.get(), 3.75);
    }

    #[test]
    fn shared_bar_fetch_max_survives_concurrent_raises() {
        let bar = SharedBar::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let bar = &bar;
                scope.spawn(move || {
                    for i in 0..1000u32 {
                        bar.raise(f64::from(t * 1000 + i) / 128.0);
                    }
                });
            }
        });
        assert_eq!(bar.get(), f64::from(3999u32) / 128.0);
    }
}
