//! A bounded heap for top-k selection under an arbitrary total order.
//!
//! [`BoundedHeap`] keeps the `k` smallest elements under a caller-supplied
//! comparator (`Ordering::Less` = ranks earlier) and returns them in
//! comparator order. Offering `n` elements costs `O(n log k)` time and
//! `O(k)` space — the replacement for "sort everything, truncate to k" that
//! [`Plan::TopK`](crate::Plan::TopK) and the predicate layer's native top-k
//! paths use. When the comparator is a total order (callers break ties with
//! a unique final key, e.g. a row id), the result is element-for-element
//! identical to a full stable sort followed by `truncate(k)`.

use std::cmp::Ordering;

/// Keeps the `cap` smallest elements under `cmp`, internally arranged as a
/// max-heap so the current worst kept element sits at the root.
pub struct BoundedHeap<T, F: Fn(&T, &T) -> Ordering> {
    cmp: F,
    cap: usize,
    data: Vec<T>,
}

impl<T, F: Fn(&T, &T) -> Ordering> BoundedHeap<T, F> {
    /// Create a heap keeping at most `cap` elements; `cmp` is the ranking
    /// order (`Less` = ranks earlier = kept in preference to `Greater`).
    pub fn new(cap: usize, cmp: F) -> Self {
        BoundedHeap { cmp, cap, data: Vec::with_capacity(cap.min(1024)) }
    }

    /// Number of elements currently kept.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The current worst kept element (the one the next better offer evicts).
    pub fn worst(&self) -> Option<&T> {
        self.data.first()
    }

    /// Offer one element: kept when the heap has room or when it ranks
    /// strictly before the current worst kept element (which is then evicted).
    pub fn offer(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        if self.data.len() < self.cap {
            self.data.push(item);
            self.sift_up(self.data.len() - 1);
        } else if (self.cmp)(&item, &self.data[0]) == Ordering::Less {
            self.data[0] = item;
            self.sift_down(0, self.data.len());
        }
    }

    /// Consume the heap, returning the kept elements in comparator order
    /// (best first). This is an in-place heapsort: the max-heap root (worst)
    /// swaps to the back repeatedly, leaving the vector ascending under `cmp`.
    pub fn into_sorted(mut self) -> Vec<T> {
        for end in (1..self.data.len()).rev() {
            self.data.swap(0, end);
            self.sift_down(0, end);
        }
        self.data
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if (self.cmp)(&self.data[idx], &self.data[parent]) == Ordering::Greater {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize, end: usize) {
        loop {
            let left = 2 * idx + 1;
            if left >= end {
                break;
            }
            let right = left + 1;
            let mut largest = idx;
            if (self.cmp)(&self.data[left], &self.data[largest]) == Ordering::Greater {
                largest = left;
            }
            if right < end
                && (self.cmp)(&self.data[right], &self.data[largest]) == Ordering::Greater
            {
                largest = right;
            }
            if largest == idx {
                break;
            }
            self.data.swap(idx, largest);
            idx = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random sequence (no rand dependency in relq).
    fn lcg_sequence(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 16
            })
            .collect()
    }

    fn top_k_by_sort(values: &[u64], k: usize) -> Vec<u64> {
        let mut sorted = values.to_vec();
        sorted.sort(); // stable
        sorted.truncate(k);
        sorted
    }

    #[test]
    fn matches_sort_then_truncate_for_all_k() {
        let values = lcg_sequence(42, 300);
        for k in [0, 1, 2, 7, 100, 299, 300, 500] {
            let mut heap = BoundedHeap::new(k, |a: &u64, b: &u64| a.cmp(b));
            for &v in &values {
                heap.offer(v);
            }
            assert_eq!(heap.into_sorted(), top_k_by_sort(&values, k), "k={k}");
        }
    }

    #[test]
    fn duplicate_keys_resolve_by_offer_order_with_index_tiebreak() {
        // Callers append a unique index as the final comparator key; with it,
        // the heap must equal stable-sort + truncate even under heavy ties.
        let values = [3u64, 1, 3, 1, 2, 2, 3, 1, 2];
        let indexed: Vec<(u64, usize)> = values.iter().copied().zip(0..).collect();
        let cmp = |a: &(u64, usize), b: &(u64, usize)| a.0.cmp(&b.0).then(a.1.cmp(&b.1));
        for k in 0..=values.len() {
            let mut heap = BoundedHeap::new(k, cmp);
            for &item in &indexed {
                heap.offer(item);
            }
            let mut expected = indexed.to_vec();
            expected.sort_by(cmp);
            expected.truncate(k);
            assert_eq!(heap.into_sorted(), expected, "k={k}");
        }
    }

    #[test]
    fn worst_and_len_track_the_kept_set() {
        let mut heap = BoundedHeap::new(2, |a: &i64, b: &i64| a.cmp(b));
        assert!(heap.is_empty());
        assert_eq!(heap.worst(), None);
        heap.offer(5);
        heap.offer(1);
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.worst(), Some(&5));
        heap.offer(3); // evicts 5
        assert_eq!(heap.worst(), Some(&3));
        heap.offer(9); // worse than worst: ignored
        assert_eq!(heap.into_sorted(), vec![1, 3]);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut heap = BoundedHeap::new(0, |a: &i64, b: &i64| a.cmp(b));
        heap.offer(1);
        assert!(heap.is_empty());
        assert!(heap.into_sorted().is_empty());
    }
}
