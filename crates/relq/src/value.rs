//! Scalar values and data types.
//!
//! `relq` supports the three scalar types the paper's SQL statements need:
//! 64-bit integers, 64-bit floats and UTF-8 strings, plus NULL.

use crate::error::{RelqError, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "Int"),
            DataType::Float => write!(f, "Float"),
            DataType::Str => write!(f, "Str"),
        }
    }
}

/// A scalar value stored in a table cell or produced by an expression.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// Data type of this value, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (integers widen to floats).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(RelqError::TypeMismatch {
                expected: "numeric",
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            other => Err(RelqError::TypeMismatch {
                expected: "integer",
                found: other.type_name().to_string(),
            }),
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RelqError::TypeMismatch {
                expected: "string",
                found: other.type_name().to_string(),
            }),
        }
    }

    /// Boolean interpretation used by filters: non-zero numerics are true.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Null => Ok(false),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            other => Err(RelqError::TypeMismatch {
                expected: "boolean",
                found: other.type_name().to_string(),
            }),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
        }
    }

    /// Total ordering used by ORDER BY and MIN/MAX: NULL sorts first,
    /// numerics compare by value across Int/Float, strings lexicographically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => {
                let (af, bf) = (a.as_f64(), b.as_f64());
                match (af, bf) {
                    (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                    // Mixed string/number: order strings after numbers.
                    _ => match (a, b) {
                        (Str(_), _) => Ordering::Greater,
                        (_, Str(_)) => Ordering::Less,
                        _ => Ordering::Equal,
                    },
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash Int and equal-valued Float identically so joins on mixed
            // numeric keys behave like SQL equality.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                if f.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A row is a vector of values matching a table's schema.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_equality_crosses_types() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn null_compares_lowest() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.5).total_cmp(&Value::Int(3)), Ordering::Greater);
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert_eq!(Value::Str("abc".into()).total_cmp(&Value::Str("abd".into())), Ordering::Less);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Str("x".to_string()));
        assert_eq!(Value::Int(4).as_f64().unwrap(), 4.0);
        assert_eq!(Value::Float(4.7).as_i64().unwrap(), 4);
        assert!(Value::Str("a".into()).as_f64().is_err());
        assert_eq!(Value::Str("a".into()).as_str().unwrap(), "a");
        assert!(Value::Int(1).as_bool().unwrap());
        assert!(!Value::Int(0).as_bool().unwrap());
        assert!(!Value::Null.as_bool().unwrap());
    }

    #[test]
    fn nan_is_self_equal_for_hashing() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }
}
