//! Per-execution bindings for prepared plans.
//!
//! A prepared plan (see [`crate::PreparedPlan`]) is built once at predicate
//! preprocessing time; everything that varies per query — the query-side
//! token/weight tables and scalar constants like `|Q|` — enters execution as
//! a *binding*: [`Plan::Param`](crate::Plan::Param) leaves resolve against the
//! table bindings and [`Expr::Param`](crate::Expr::Param) leaves against the
//! scalar bindings.

use crate::error::{RelqError, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Named table and scalar parameters for one plan execution.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    tables: HashMap<String, Arc<Table>>,
    scalars: HashMap<String, Value>,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a table parameter (consumed by [`Plan::Param`](crate::Plan::Param)).
    pub fn with_table(mut self, name: &str, table: impl Into<Arc<Table>>) -> Self {
        self.tables.insert(name.to_string(), table.into());
        self
    }

    /// Bind a scalar parameter (consumed by [`Expr::Param`](crate::Expr::Param)).
    pub fn with_scalar(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.scalars.insert(name.to_string(), value.into());
        self
    }

    /// Look up a table binding.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>> {
        self.tables.get(name).ok_or_else(|| RelqError::UnboundParam(name.to_string()))
    }

    /// Look up a scalar binding.
    pub fn scalar(&self, name: &str) -> Result<&Value> {
        self.scalars.get(name).ok_or_else(|| RelqError::UnboundParam(name.to_string()))
    }

    /// True when no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.scalars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn bind_and_lookup() {
        let t = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let b = Bindings::new().with_table("q", t).with_scalar("len", 3.5);
        assert!(!b.is_empty());
        assert_eq!(b.table("q").unwrap().num_rows(), 0);
        assert_eq!(b.scalar("len").unwrap(), &Value::Float(3.5));
        assert!(matches!(b.table("zzz"), Err(RelqError::UnboundParam(_))));
        assert!(matches!(b.scalar("zzz"), Err(RelqError::UnboundParam(_))));
        assert!(Bindings::new().is_empty());
    }
}
