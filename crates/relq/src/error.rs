//! Error type shared by every `relq` operation.

use std::fmt;

/// Errors produced while building or executing relational plans.
#[derive(Debug, Clone, PartialEq)]
pub enum RelqError {
    /// A referenced column does not exist in the input schema.
    UnknownColumn(String),
    /// A referenced table is not registered in the catalog.
    UnknownTable(String),
    /// A value of an unexpected type was encountered during evaluation.
    TypeMismatch { expected: &'static str, found: String },
    /// A row had a different arity than the schema it was inserted into.
    ArityMismatch { expected: usize, found: usize },
    /// Two schemas that must be union-compatible differ.
    SchemaMismatch(String),
    /// A plan node was configured incorrectly (e.g. join key count mismatch).
    InvalidPlan(String),
    /// Division by zero or another arithmetic failure.
    Arithmetic(String),
    /// A `Plan::Param` / `Expr::Param` was executed without a binding.
    UnboundParam(String),
    /// A `Plan::IndexJoin` referenced a table that has no index on the
    /// requested key columns (register it with `Catalog::register_indexed`).
    MissingIndex { table: String, keys: Vec<String> },
    /// A `Plan::TopKBounded` referenced a table that has no posting index
    /// (register it with `Catalog::register_posting` or attach a shared one).
    MissingPosting(String),
}

impl fmt::Display for RelqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelqError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelqError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelqError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelqError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} values, found {found}")
            }
            RelqError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelqError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            RelqError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            RelqError::UnboundParam(p) => write!(f, "unbound parameter: {p}"),
            RelqError::MissingIndex { table, keys } => {
                write!(f, "no index on table {table} for key columns [{}]", keys.join(", "))
            }
            RelqError::MissingPosting(table) => {
                write!(f, "no posting index on table {table}")
            }
        }
    }
}

impl std::error::Error for RelqError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelqError::UnknownColumn("tid".to_string());
        assert!(e.to_string().contains("tid"));
        let e = RelqError::TypeMismatch { expected: "Int", found: "Str".to_string() };
        assert!(e.to_string().contains("Int"));
        assert!(e.to_string().contains("Str"));
        let e = RelqError::ArityMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains('3'));
    }
}
