//! # relq — a small in-memory relational query engine
//!
//! `relq` is the declarative substrate of the DASP reproduction. The paper
//! ("Benchmarking Declarative Approximate Selection Predicates") expresses
//! every similarity predicate as SQL over token and weight tables executed by
//! a relational DBMS; this crate provides the equivalent building blocks:
//!
//! * typed in-memory [`Table`]s with a [`Catalog`] of named relations stored
//!   behind `Arc` (scans share storage, they never copy rows),
//! * persistent inverted indexes built at registration time
//!   ([`Catalog::register_indexed`]) and probed by [`Plan::IndexJoin`],
//! * scalar [`Expr`]essions (arithmetic, `LOG`, `EXP`, `POWER`, comparisons),
//! * grouped aggregation ([`AggFunc`]: `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`),
//! * composable logical [`Plan`]s (scan, filter, project, hash join, index
//!   join, aggregate, sort, distinct, union, limit) executed by [`execute`],
//! * [`PreparedPlan`]s with named table/scalar parameters ([`Bindings`]),
//!   built once at preprocessing time and executed per query.
//!
//! ```
//! use relq::{Bindings, Catalog, Plan, PreparedPlan, TableBuilder, DataType, AggFunc, col};
//!
//! let tokens = TableBuilder::new()
//!     .column("tid", DataType::Int)
//!     .column("token", DataType::Str)
//!     .row(vec![1.into(), "db".into()])
//!     .row(vec![1.into(), "lab".into()])
//!     .row(vec![2.into(), "db".into()])
//!     .build()
//!     .unwrap();
//! let query = TableBuilder::new()
//!     .column("token", DataType::Str)
//!     .row(vec!["db".into()])
//!     .build()
//!     .unwrap();
//!
//! // Preprocessing: register the base relation once, with its token index.
//! let mut catalog = Catalog::new();
//! catalog.register_indexed("base_tokens", tokens, &["token"]).unwrap();
//!
//! // The IntersectSize predicate of the paper (Figure 4.1), prepared once:
//! let plan = PreparedPlan::new(
//!     Plan::index_join("base_tokens", &["token"], Plan::param("query_tokens"), &["token"])
//!         .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]),
//! );
//! // Query time: bind this query's token table and probe the index.
//! let bindings = Bindings::new().with_table("query_tokens", query);
//! let scores = plan.execute(&catalog, &bindings).unwrap();
//! assert_eq!(scores.num_rows(), 2);
//! # let _ = col("tid");
//! ```

#![forbid(unsafe_code)]

mod agg;
mod bindings;
mod catalog;
mod error;
mod exec;
mod expr;
pub mod fault;
mod limits;
mod plan;
mod posting;
mod prepared;
mod schema;
mod table;
mod topk;
mod value;

pub use agg::{AggFunc, Aggregate};
pub use bindings::Bindings;
pub use catalog::{Catalog, TableIndex};
pub use error::{RelqError, Result};
pub use exec::{
    execute, execute_naive, execute_with, execute_with_limits, probe_stats, sample_probe,
    ProbeStats, SampleProbe,
};
pub use expr::{col, lit, param, BinaryOp, Expr, ScalarFn};
pub use fault::{fault_point, set_fault_hook};
pub use limits::{ExecLimits, ExecReport};
pub use plan::{Plan, ProjectItem, SortOrder};
pub use posting::{PostingIndex, PostingList, DEFAULT_POSTING_BLOCK};
pub use prepared::PreparedPlan;
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use topk::{decode_score_key, encode_score_key, BoundedHeap, SharedBar};
pub use value::{DataType, Row, Value};
