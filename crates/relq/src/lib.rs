//! # relq — a small in-memory relational query engine
//!
//! `relq` is the declarative substrate of the DASP reproduction. The paper
//! ("Benchmarking Declarative Approximate Selection Predicates") expresses
//! every similarity predicate as SQL over token and weight tables executed by
//! a relational DBMS; this crate provides the equivalent building blocks:
//!
//! * typed in-memory [`Table`]s with a [`Catalog`] of named relations,
//! * scalar [`Expr`]essions (arithmetic, `LOG`, `EXP`, `POWER`, comparisons),
//! * grouped aggregation ([`AggFunc`]: `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`),
//! * composable logical [`Plan`]s (scan, filter, project, hash join,
//!   aggregate, sort, distinct, union, limit) executed by [`execute`].
//!
//! ```
//! use relq::{Catalog, Plan, TableBuilder, DataType, AggFunc, execute, col};
//!
//! let tokens = TableBuilder::new()
//!     .column("tid", DataType::Int)
//!     .column("token", DataType::Str)
//!     .row(vec![1.into(), "db".into()])
//!     .row(vec![1.into(), "lab".into()])
//!     .row(vec![2.into(), "db".into()])
//!     .build()
//!     .unwrap();
//! let query = TableBuilder::new()
//!     .column("token", DataType::Str)
//!     .row(vec!["db".into()])
//!     .build()
//!     .unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.register("base_tokens", tokens);
//!
//! // The IntersectSize predicate of the paper (Figure 4.1):
//! let plan = Plan::scan("base_tokens")
//!     .join_on(Plan::values(query), &["token"], &["token"])
//!     .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]);
//! let scores = execute(&plan, &catalog).unwrap();
//! assert_eq!(scores.num_rows(), 2);
//! # let _ = col("tid");
//! ```

#![forbid(unsafe_code)]

mod agg;
mod catalog;
mod error;
mod exec;
mod expr;
mod plan;
mod schema;
mod table;
mod value;

pub use agg::{AggFunc, Aggregate};
pub use catalog::Catalog;
pub use error::{RelqError, Result};
pub use exec::execute;
pub use expr::{col, lit, BinaryOp, Expr, ScalarFn};
pub use plan::{Plan, ProjectItem, SortOrder};
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Row, Value};
