//! Scalar expressions evaluated against rows.
//!
//! The paper's SQL statements use arithmetic, `LOG`, `EXP`, `POWER`, `SQRT`
//! and comparisons; this module provides exactly that surface.

use crate::error::{RelqError, Result};
use crate::schema::Schema;
use crate::value::{Row, Value};

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    /// Natural logarithm.
    Ln,
    Exp,
    Sqrt,
    Abs,
    /// `POWER(base, exponent)`.
    Power,
    /// Smallest of two numbers (SQL `LEAST`).
    Least,
    /// Largest of two numbers (SQL `GREATEST`).
    Greatest,
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the input schema by name.
    Column(String),
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// One-argument scalar function call.
    Unary { func: ScalarFn, arg: Box<Expr> },
    /// Two-argument scalar function call (`Power`, `Least`, `Greatest`).
    BinaryFn { func: ScalarFn, left: Box<Expr>, right: Box<Expr> },
}

/// Reference a column by name.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

/// A literal value.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

impl Expr {
    fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Add, other)
    }
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Sub, other)
    }
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Mul, other)
    }
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Div, other)
    }
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, other)
    }
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// Natural logarithm of this expression.
    pub fn ln(self) -> Expr {
        Expr::Unary { func: ScalarFn::Ln, arg: Box::new(self) }
    }
    pub fn exp(self) -> Expr {
        Expr::Unary { func: ScalarFn::Exp, arg: Box::new(self) }
    }
    pub fn sqrt(self) -> Expr {
        Expr::Unary { func: ScalarFn::Sqrt, arg: Box::new(self) }
    }
    pub fn abs(self) -> Expr {
        Expr::Unary { func: ScalarFn::Abs, arg: Box::new(self) }
    }
    /// `POWER(self, exponent)`.
    pub fn power(self, exponent: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Power, left: Box::new(self), right: Box::new(exponent) }
    }
    pub fn least(self, other: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Least, left: Box::new(self), right: Box::new(other) }
    }
    pub fn greatest(self, other: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Greatest, left: Box::new(self), right: Box::new(other) }
    }

    /// Evaluate the expression against one row with the given schema.
    pub fn evaluate(&self, row: &Row, schema: &Schema) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.evaluate(row, schema)?;
                let r = right.evaluate(row, schema)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { func, arg } => {
                let v = arg.evaluate(row, schema)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let x = v.as_f64()?;
                let out = match func {
                    ScalarFn::Ln => {
                        if x <= 0.0 {
                            return Err(RelqError::Arithmetic(format!("LOG of non-positive value {x}")));
                        }
                        x.ln()
                    }
                    ScalarFn::Exp => x.exp(),
                    ScalarFn::Sqrt => {
                        if x < 0.0 {
                            return Err(RelqError::Arithmetic(format!("SQRT of negative value {x}")));
                        }
                        x.sqrt()
                    }
                    ScalarFn::Abs => x.abs(),
                    other => {
                        return Err(RelqError::InvalidPlan(format!(
                            "{other:?} is not a one-argument function"
                        )))
                    }
                };
                Ok(Value::Float(out))
            }
            Expr::BinaryFn { func, left, right } => {
                let l = left.evaluate(row, schema)?;
                let r = right.evaluate(row, schema)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                let (a, b) = (l.as_f64()?, r.as_f64()?);
                let out = match func {
                    ScalarFn::Power => a.powf(b),
                    ScalarFn::Least => a.min(b),
                    ScalarFn::Greatest => a.max(b),
                    other => {
                        return Err(RelqError::InvalidPlan(format!(
                            "{other:?} is not a two-argument function"
                        )))
                    }
                };
                Ok(Value::Float(out))
            }
        }
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Keep integer arithmetic exact when both sides are integers and
            // the operation is not division (SQL-style division is fractional
            // here because every weight formula in the paper needs it).
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                match op {
                    Add => return Ok(Value::Int(a + b)),
                    Sub => return Ok(Value::Int(a - b)),
                    Mul => return Ok(Value::Int(a * b)),
                    _ => {}
                }
            }
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(RelqError::Arithmetic("division by zero".to_string()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
        Eq => Ok(Value::Int((l == r) as i64)),
        NotEq => Ok(Value::Int((l != r) as i64)),
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Int(0));
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        And => Ok(Value::Int((l.as_bool()? && r.as_bool()?) as i64)),
        Or => Ok(Value::Int((l.as_bool()? || r.as_bool()?) as i64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float), ("s", DataType::Str)])
    }

    fn row() -> Row {
        vec![Value::Int(4), Value::Float(2.5), Value::Str("x".into())]
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        assert_eq!(col("a").evaluate(&row(), &s).unwrap(), Value::Int(4));
        assert_eq!(lit(7i64).evaluate(&row(), &s).unwrap(), Value::Int(7));
        assert!(col("zzz").evaluate(&row(), &s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = col("a").add(col("b"));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Float(6.5));
        let e = col("a").mul(lit(3i64));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(12));
        let e = col("a").div(lit(8i64));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Float(0.5));
        let e = col("a").div(lit(0i64));
        assert!(e.evaluate(&row(), &s).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let s = schema();
        assert_eq!(col("a").gt(lit(3i64)).evaluate(&row(), &s).unwrap(), Value::Int(1));
        assert_eq!(col("a").lt(lit(3i64)).evaluate(&row(), &s).unwrap(), Value::Int(0));
        assert_eq!(col("s").eq(lit("x")).evaluate(&row(), &s).unwrap(), Value::Int(1));
        let e = col("a").gt(lit(3i64)).and(col("b").lt(lit(3.0)));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(1));
        let e = col("a").gt(lit(100i64)).or(col("b").lt(lit(3.0)));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(1));
    }

    #[test]
    fn scalar_functions() {
        let s = schema();
        let v = col("b").ln().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 2.5f64.ln()).abs() < 1e-12);
        let v = lit(1.0).exp().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - std::f64::consts::E).abs() < 1e-12);
        let v = lit(9.0).sqrt().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 3.0).abs() < 1e-12);
        let v = lit(2.0).power(lit(10.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 1024.0).abs() < 1e-9);
        let v = lit(2.0).least(lit(5.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 2.0);
        let v = lit(2.0).greatest(lit(5.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 5.0);
        assert!(lit(-1.0).ln().evaluate(&row(), &s).is_err());
        assert!(lit(-1.0).sqrt().evaluate(&row(), &s).is_err());
        let v = lit(-1.5).abs().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 1.5);
    }

    #[test]
    fn null_propagation() {
        let s = Schema::from_pairs(&[("n", DataType::Float)]);
        let r = vec![Value::Null];
        assert_eq!(col("n").add(lit(1.0)).evaluate(&r, &s).unwrap(), Value::Null);
        assert_eq!(col("n").ln().evaluate(&r, &s).unwrap(), Value::Null);
        assert_eq!(col("n").gt(lit(0.0)).evaluate(&r, &s).unwrap(), Value::Int(0));
    }
}
