//! Scalar expressions evaluated against rows.
//!
//! The paper's SQL statements use arithmetic, `LOG`, `EXP`, `POWER`, `SQRT`
//! and comparisons; this module provides exactly that surface.

use crate::bindings::Bindings;
use crate::error::{RelqError, Result};
use crate::schema::Schema;
use crate::value::{DataType, Row, Value};

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    /// Natural logarithm.
    Ln,
    Exp,
    Sqrt,
    Abs,
    /// `POWER(base, exponent)`.
    Power,
    /// Smallest of two numbers (SQL `LEAST`).
    Least,
    /// Largest of two numbers (SQL `GREATEST`).
    Greatest,
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the input schema by name.
    Column(String),
    /// A constant.
    Literal(Value),
    /// A named scalar parameter of a prepared plan, resolved from the
    /// execution's [`Bindings`] (see [`crate::PreparedPlan`]).
    Param(String),
    /// Binary operation.
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// One-argument scalar function call.
    Unary { func: ScalarFn, arg: Box<Expr> },
    /// Two-argument scalar function call (`Power`, `Least`, `Greatest`).
    BinaryFn { func: ScalarFn, left: Box<Expr>, right: Box<Expr> },
}

/// Reference a column by name.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

/// A literal value.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

/// A named scalar parameter, bound per execution via
/// [`Bindings::with_scalar`](crate::Bindings::with_scalar).
pub fn param(name: &str) -> Expr {
    Expr::Param(name.to_string())
}

// The fluent builder names (`add`, `sub`, `mul`, `div`) intentionally mirror
// SQL/`Expr`-DSL conventions rather than implementing `std::ops`: operator
// overloading would also demand `Expr + f64` etc., while the method form
// keeps the plan-construction code uniform.
#[allow(clippy::should_implement_trait)]
impl Expr {
    fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Add, other)
    }
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Sub, other)
    }
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Mul, other)
    }
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Div, other)
    }
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, other)
    }
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// Natural logarithm of this expression.
    pub fn ln(self) -> Expr {
        Expr::Unary { func: ScalarFn::Ln, arg: Box::new(self) }
    }
    pub fn exp(self) -> Expr {
        Expr::Unary { func: ScalarFn::Exp, arg: Box::new(self) }
    }
    pub fn sqrt(self) -> Expr {
        Expr::Unary { func: ScalarFn::Sqrt, arg: Box::new(self) }
    }
    pub fn abs(self) -> Expr {
        Expr::Unary { func: ScalarFn::Abs, arg: Box::new(self) }
    }
    /// `POWER(self, exponent)`.
    pub fn power(self, exponent: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Power, left: Box::new(self), right: Box::new(exponent) }
    }
    pub fn least(self, other: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Least, left: Box::new(self), right: Box::new(other) }
    }
    pub fn greatest(self, other: Expr) -> Expr {
        Expr::BinaryFn { func: ScalarFn::Greatest, left: Box::new(self), right: Box::new(other) }
    }

    /// True when the expression tree contains any [`Expr::Param`] leaf.
    pub fn has_params(&self) -> bool {
        match self {
            Expr::Param(_) => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } | Expr::BinaryFn { left, right, .. } => {
                left.has_params() || right.has_params()
            }
            Expr::Unary { arg, .. } => arg.has_params(),
        }
    }

    /// Resolve every [`Expr::Param`] leaf against the scalar bindings,
    /// producing a parameter-free expression (errors on unbound names).
    pub fn bind(&self, bindings: &Bindings) -> Result<Expr> {
        Ok(match self {
            Expr::Param(name) => Expr::Literal(bindings.scalar(name)?.clone()),
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(bindings)?),
                right: Box::new(right.bind(bindings)?),
            },
            Expr::Unary { func, arg } => {
                Expr::Unary { func: *func, arg: Box::new(arg.bind(bindings)?) }
            }
            Expr::BinaryFn { func, left, right } => Expr::BinaryFn {
                func: *func,
                left: Box::new(left.bind(bindings)?),
                right: Box::new(right.bind(bindings)?),
            },
        })
    }

    /// Static output type of the expression against an input schema, when it
    /// can be derived without evaluating a row. `None` for unknown columns,
    /// NULL literals and unbound parameters.
    pub fn output_type(&self, schema: &Schema) -> Option<DataType> {
        match self {
            Expr::Column(name) => schema.index_of(name).ok().map(|i| schema.field(i).dtype),
            Expr::Literal(v) => v.data_type(),
            Expr::Param(_) => None,
            Expr::Binary { op, left, right } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
                    match (left.output_type(schema)?, right.output_type(schema)?) {
                        (DataType::Int, DataType::Int) => Some(DataType::Int),
                        (DataType::Str, _) | (_, DataType::Str) => None,
                        _ => Some(DataType::Float),
                    }
                }
                BinaryOp::Div => Some(DataType::Float),
                // Comparisons and boolean connectives yield SQL-style 0/1.
                _ => Some(DataType::Int),
            },
            Expr::Unary { .. } | Expr::BinaryFn { .. } => Some(DataType::Float),
        }
    }

    /// Evaluate the expression against one row with the given schema.
    pub fn evaluate(&self, row: &Row, schema: &Schema) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(name) => Err(RelqError::UnboundParam(name.clone())),
            Expr::Binary { op, left, right } => {
                let l = left.evaluate(row, schema)?;
                let r = right.evaluate(row, schema)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { func, arg } => eval_unary(*func, arg.evaluate(row, schema)?),
            Expr::BinaryFn { func, left, right } => {
                let l = left.evaluate(row, schema)?;
                let r = right.evaluate(row, schema)?;
                eval_binary_fn(*func, &l, &r)
            }
        }
    }

    /// Compile the expression against a fixed schema: column names resolve to
    /// indices once, so per-row evaluation does no name lookups. Fails on
    /// unknown columns and on unbound parameters (bind scalars first).
    pub(crate) fn compile(&self, schema: &Schema) -> Result<CompiledExpr> {
        Ok(match self {
            Expr::Column(name) => CompiledExpr::Column(schema.index_of(name)?),
            Expr::Literal(v) => CompiledExpr::Literal(v.clone()),
            Expr::Param(name) => return Err(RelqError::UnboundParam(name.clone())),
            Expr::Binary { op, left, right } => CompiledExpr::Binary {
                op: *op,
                left: Box::new(left.compile(schema)?),
                right: Box::new(right.compile(schema)?),
            },
            Expr::Unary { func, arg } => {
                CompiledExpr::Unary { func: *func, arg: Box::new(arg.compile(schema)?) }
            }
            Expr::BinaryFn { func, left, right } => CompiledExpr::BinaryFn {
                func: *func,
                left: Box::new(left.compile(schema)?),
                right: Box::new(right.compile(schema)?),
            },
        })
    }
}

/// An expression with column references resolved to positional indices.
/// Evaluates against a *split* row — the virtual concatenation of a base-row
/// slice and a probe-row slice — so fused join-aggregate execution never has
/// to materialize joined rows. Produces bit-identical values to
/// [`Expr::evaluate`] over the materialized concatenation: the scalar
/// semantics are shared (`eval_binary` / `eval_unary` / `eval_binary_fn`).
#[derive(Debug, Clone)]
pub(crate) enum CompiledExpr {
    Column(usize),
    Literal(Value),
    Binary { op: BinaryOp, left: Box<CompiledExpr>, right: Box<CompiledExpr> },
    Unary { func: ScalarFn, arg: Box<CompiledExpr> },
    BinaryFn { func: ScalarFn, left: Box<CompiledExpr>, right: Box<CompiledExpr> },
}

impl CompiledExpr {
    /// Evaluate against one contiguous row.
    pub(crate) fn evaluate(&self, row: &[Value]) -> Result<Value> {
        match self {
            CompiledExpr::Column(idx) => Ok(row[*idx].clone()),
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Binary { op, left, right } => {
                let l = left.evaluate(row)?;
                let r = right.evaluate(row)?;
                eval_binary(*op, &l, &r)
            }
            CompiledExpr::Unary { func, arg } => eval_unary(*func, arg.evaluate(row)?),
            CompiledExpr::BinaryFn { func, left, right } => {
                let l = left.evaluate(row)?;
                let r = right.evaluate(row)?;
                eval_binary_fn(*func, &l, &r)
            }
        }
    }

    /// Evaluate against the virtual row `left ++ right` where `left` has
    /// `split` columns.
    pub(crate) fn evaluate_split(
        &self,
        left_row: &[Value],
        right_row: &[Value],
        split: usize,
    ) -> Result<Value> {
        match self {
            CompiledExpr::Column(idx) => Ok(if *idx < split {
                left_row[*idx].clone()
            } else {
                right_row[*idx - split].clone()
            }),
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Binary { op, left, right } => {
                let l = left.evaluate_split(left_row, right_row, split)?;
                let r = right.evaluate_split(left_row, right_row, split)?;
                eval_binary(*op, &l, &r)
            }
            CompiledExpr::Unary { func, arg } => {
                eval_unary(*func, arg.evaluate_split(left_row, right_row, split)?)
            }
            CompiledExpr::BinaryFn { func, left, right } => {
                let l = left.evaluate_split(left_row, right_row, split)?;
                let r = right.evaluate_split(left_row, right_row, split)?;
                eval_binary_fn(*func, &l, &r)
            }
        }
    }
}

/// An unboxed float evaluator for expression trees that provably coerce to
/// `f64` anyway: no string columns, no comparisons/boolean connectives, and
/// no `Int (+|-|*) Int` nodes (those produce exact 64-bit integers in the
/// generic evaluator, which an `f64` pipeline could round). Within that
/// fragment, evaluation performs bit-identical arithmetic to
/// [`Expr::evaluate`] — every value the generic path would coerce with
/// `as_f64` is read as `f64` at the leaf — so fused aggregation can use it
/// without changing results. `None` models SQL NULL with the same
/// propagation rules.
#[derive(Debug, Clone)]
pub(crate) enum FloatExpr {
    Column(usize),
    Const(Option<f64>),
    Binary { op: BinaryOp, left: Box<FloatExpr>, right: Box<FloatExpr> },
    Unary { func: ScalarFn, arg: Box<FloatExpr> },
    BinaryFn { func: ScalarFn, left: Box<FloatExpr>, right: Box<FloatExpr> },
}

/// Static type of a float-safe subtree: whether the generic evaluator would
/// have produced `Value::Int` (bare integer leaf) or `Value::Float`.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum FloatExprType {
    IntLeaf,
    Float,
}

impl FloatExpr {
    /// Translate a parameter-free expression into the float fragment.
    /// Returns `None` when the expression is outside the fragment (then the
    /// caller falls back to [`CompiledExpr`]).
    pub(crate) fn from_expr(expr: &Expr, schema: &Schema) -> Option<(FloatExpr, FloatExprType)> {
        match expr {
            Expr::Column(name) => {
                let idx = schema.index_of(name).ok()?;
                match schema.field(idx).dtype {
                    DataType::Str => None,
                    DataType::Int => Some((FloatExpr::Column(idx), FloatExprType::IntLeaf)),
                    DataType::Float => Some((FloatExpr::Column(idx), FloatExprType::Float)),
                }
            }
            Expr::Literal(Value::Null) => Some((FloatExpr::Const(None), FloatExprType::Float)),
            Expr::Literal(Value::Int(v)) => {
                // Large integer literals would round when carried as f64.
                (v.abs() <= (1i64 << 53))
                    .then_some((FloatExpr::Const(Some(*v as f64)), FloatExprType::IntLeaf))
            }
            Expr::Literal(Value::Float(x)) => {
                Some((FloatExpr::Const(Some(*x)), FloatExprType::Float))
            }
            Expr::Literal(Value::Str(_)) | Expr::Param(_) => None,
            Expr::Binary { op, left, right } => {
                match op {
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {}
                    // Comparisons and boolean connectives are outside the
                    // float fragment (they yield SQL-style Int 0/1).
                    _ => return None,
                }
                let (l, lt) = Self::from_expr(left, schema)?;
                let (r, rt) = Self::from_expr(right, schema)?;
                // Int (+|-|*) Int is exact integer arithmetic generically.
                if *op != BinaryOp::Div
                    && lt == FloatExprType::IntLeaf
                    && rt == FloatExprType::IntLeaf
                {
                    return None;
                }
                Some((
                    FloatExpr::Binary { op: *op, left: Box::new(l), right: Box::new(r) },
                    FloatExprType::Float,
                ))
            }
            Expr::Unary { func, arg } => {
                let (a, _) = Self::from_expr(arg, schema)?;
                Some((FloatExpr::Unary { func: *func, arg: Box::new(a) }, FloatExprType::Float))
            }
            Expr::BinaryFn { func, left, right } => {
                let (l, _) = Self::from_expr(left, schema)?;
                let (r, _) = Self::from_expr(right, schema)?;
                Some((
                    FloatExpr::BinaryFn { func: *func, left: Box::new(l), right: Box::new(r) },
                    FloatExprType::Float,
                ))
            }
        }
    }

    /// Evaluate against the virtual row `left ++ right` (`left` has `split`
    /// columns); `Ok(None)` is SQL NULL.
    pub(crate) fn evaluate_split(
        &self,
        left_row: &[Value],
        right_row: &[Value],
        split: usize,
    ) -> Result<Option<f64>> {
        match self {
            FloatExpr::Column(idx) => {
                let v = if *idx < split { &left_row[*idx] } else { &right_row[*idx - split] };
                match v {
                    Value::Null => Ok(None),
                    Value::Int(i) => Ok(Some(*i as f64)),
                    Value::Float(x) => Ok(Some(*x)),
                    other => Err(RelqError::TypeMismatch {
                        expected: "numeric",
                        found: format!("{other}"),
                    }),
                }
            }
            FloatExpr::Const(v) => Ok(*v),
            FloatExpr::Binary { op, left, right } => {
                let (Some(a), Some(b)) = (
                    left.evaluate_split(left_row, right_row, split)?,
                    right.evaluate_split(left_row, right_row, split)?,
                ) else {
                    return Ok(None);
                };
                Ok(Some(match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    BinaryOp::Div => {
                        if b == 0.0 {
                            return Err(RelqError::Arithmetic("division by zero".to_string()));
                        }
                        a / b
                    }
                    _ => unreachable!("non-arithmetic ops are rejected by from_expr"),
                }))
            }
            FloatExpr::Unary { func, arg } => {
                let Some(x) = arg.evaluate_split(left_row, right_row, split)? else {
                    return Ok(None);
                };
                Ok(Some(match func {
                    ScalarFn::Ln => {
                        if x <= 0.0 {
                            return Err(RelqError::Arithmetic(format!(
                                "LOG of non-positive value {x}"
                            )));
                        }
                        x.ln()
                    }
                    ScalarFn::Exp => x.exp(),
                    ScalarFn::Sqrt => {
                        if x < 0.0 {
                            return Err(RelqError::Arithmetic(format!(
                                "SQRT of negative value {x}"
                            )));
                        }
                        x.sqrt()
                    }
                    ScalarFn::Abs => x.abs(),
                    other => {
                        return Err(RelqError::InvalidPlan(format!(
                            "{other:?} is not a one-argument function"
                        )))
                    }
                }))
            }
            FloatExpr::BinaryFn { func, left, right } => {
                let (Some(a), Some(b)) = (
                    left.evaluate_split(left_row, right_row, split)?,
                    right.evaluate_split(left_row, right_row, split)?,
                ) else {
                    return Ok(None);
                };
                Ok(Some(match func {
                    ScalarFn::Power => a.powf(b),
                    ScalarFn::Least => a.min(b),
                    ScalarFn::Greatest => a.max(b),
                    other => {
                        return Err(RelqError::InvalidPlan(format!(
                            "{other:?} is not a two-argument function"
                        )))
                    }
                }))
            }
        }
    }
}

fn eval_unary(func: ScalarFn, v: Value) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let x = v.as_f64()?;
    let out = match func {
        ScalarFn::Ln => {
            if x <= 0.0 {
                return Err(RelqError::Arithmetic(format!("LOG of non-positive value {x}")));
            }
            x.ln()
        }
        ScalarFn::Exp => x.exp(),
        ScalarFn::Sqrt => {
            if x < 0.0 {
                return Err(RelqError::Arithmetic(format!("SQRT of negative value {x}")));
            }
            x.sqrt()
        }
        ScalarFn::Abs => x.abs(),
        other => {
            return Err(RelqError::InvalidPlan(format!("{other:?} is not a one-argument function")))
        }
    };
    Ok(Value::Float(out))
}

fn eval_binary_fn(func: ScalarFn, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let (a, b) = (l.as_f64()?, r.as_f64()?);
    let out = match func {
        ScalarFn::Power => a.powf(b),
        ScalarFn::Least => a.min(b),
        ScalarFn::Greatest => a.max(b),
        other => {
            return Err(RelqError::InvalidPlan(format!("{other:?} is not a two-argument function")))
        }
    };
    Ok(Value::Float(out))
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Keep integer arithmetic exact when both sides are integers and
            // the operation is not division (SQL-style division is fractional
            // here because every weight formula in the paper needs it).
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                match op {
                    Add => return Ok(Value::Int(a + b)),
                    Sub => return Ok(Value::Int(a - b)),
                    Mul => return Ok(Value::Int(a * b)),
                    _ => {}
                }
            }
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(RelqError::Arithmetic("division by zero".to_string()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
        Eq => Ok(Value::Int((l == r) as i64)),
        NotEq => Ok(Value::Int((l != r) as i64)),
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Int(0));
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        And => Ok(Value::Int((l.as_bool()? && r.as_bool()?) as i64)),
        Or => Ok(Value::Int((l.as_bool()? || r.as_bool()?) as i64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float), ("s", DataType::Str)])
    }

    fn row() -> Row {
        vec![Value::Int(4), Value::Float(2.5), Value::Str("x".into())]
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        assert_eq!(col("a").evaluate(&row(), &s).unwrap(), Value::Int(4));
        assert_eq!(lit(7i64).evaluate(&row(), &s).unwrap(), Value::Int(7));
        assert!(col("zzz").evaluate(&row(), &s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = col("a").add(col("b"));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Float(6.5));
        let e = col("a").mul(lit(3i64));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(12));
        let e = col("a").div(lit(8i64));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Float(0.5));
        let e = col("a").div(lit(0i64));
        assert!(e.evaluate(&row(), &s).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let s = schema();
        assert_eq!(col("a").gt(lit(3i64)).evaluate(&row(), &s).unwrap(), Value::Int(1));
        assert_eq!(col("a").lt(lit(3i64)).evaluate(&row(), &s).unwrap(), Value::Int(0));
        assert_eq!(col("s").eq(lit("x")).evaluate(&row(), &s).unwrap(), Value::Int(1));
        let e = col("a").gt(lit(3i64)).and(col("b").lt(lit(3.0)));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(1));
        let e = col("a").gt(lit(100i64)).or(col("b").lt(lit(3.0)));
        assert_eq!(e.evaluate(&row(), &s).unwrap(), Value::Int(1));
    }

    #[test]
    fn scalar_functions() {
        let s = schema();
        let v = col("b").ln().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 2.5f64.ln()).abs() < 1e-12);
        let v = lit(1.0).exp().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - std::f64::consts::E).abs() < 1e-12);
        let v = lit(9.0).sqrt().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 3.0).abs() < 1e-12);
        let v = lit(2.0).power(lit(10.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert!((v - 1024.0).abs() < 1e-9);
        let v = lit(2.0).least(lit(5.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 2.0);
        let v = lit(2.0).greatest(lit(5.0)).evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 5.0);
        assert!(lit(-1.0).ln().evaluate(&row(), &s).is_err());
        assert!(lit(-1.0).sqrt().evaluate(&row(), &s).is_err());
        let v = lit(-1.5).abs().evaluate(&row(), &s).unwrap().as_f64().unwrap();
        assert_eq!(v, 1.5);
    }

    #[test]
    fn params_bind_and_refuse_unbound_evaluation() {
        let s = schema();
        let e = col("a").add(param("boost"));
        assert!(e.has_params());
        assert!(!col("a").add(lit(1i64)).has_params());
        // Unbound evaluation is an error, not a silent default.
        assert!(matches!(e.evaluate(&row(), &s), Err(RelqError::UnboundParam(_))));
        let bindings = crate::Bindings::new().with_scalar("boost", 10i64);
        let bound = e.bind(&bindings).unwrap();
        assert!(!bound.has_params());
        assert_eq!(bound.evaluate(&row(), &s).unwrap(), Value::Int(14));
        assert!(e.bind(&crate::Bindings::new()).is_err());
    }

    #[test]
    fn output_types_derive_from_expressions() {
        let s = schema();
        assert_eq!(col("a").output_type(&s), Some(DataType::Int));
        assert_eq!(col("b").output_type(&s), Some(DataType::Float));
        assert_eq!(col("s").output_type(&s), Some(DataType::Str));
        assert_eq!(col("missing").output_type(&s), None);
        assert_eq!(col("a").add(col("a")).output_type(&s), Some(DataType::Int));
        assert_eq!(col("a").add(col("b")).output_type(&s), Some(DataType::Float));
        assert_eq!(col("a").div(col("a")).output_type(&s), Some(DataType::Float));
        assert_eq!(col("a").gt(lit(1i64)).output_type(&s), Some(DataType::Int));
        assert_eq!(col("b").ln().output_type(&s), Some(DataType::Float));
        assert_eq!(lit(2.0).power(lit(3.0)).output_type(&s), Some(DataType::Float));
        assert_eq!(lit(Value::Null).output_type(&s), None);
        assert_eq!(param("p").output_type(&s), None);
    }

    #[test]
    fn null_propagation() {
        let s = Schema::from_pairs(&[("n", DataType::Float)]);
        let r = vec![Value::Null];
        assert_eq!(col("n").add(lit(1.0)).evaluate(&r, &s).unwrap(), Value::Null);
        assert_eq!(col("n").ln().evaluate(&r, &s).unwrap(), Value::Null);
        assert_eq!(col("n").gt(lit(0.0)).evaluate(&r, &s).unwrap(), Value::Int(0));
    }
}
