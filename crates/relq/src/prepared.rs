//! Prepared plans: build a plan template once at preprocessing time, execute
//! it many times with per-query [`Bindings`].
//!
//! This is the query-time contract every predicate in `dasp-core` follows:
//! `build()` registers its base relations (indexed) in a [`Catalog`] and
//! constructs one `PreparedPlan` whose leaves are [`Plan::Param`] /
//! [`Expr::Param`](crate::Expr::Param) placeholders; `rank()` only binds the
//! query-side tables and scalars and executes. The plan tree is never
//! reconstructed per query.

use crate::bindings::Bindings;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::{execute_naive, execute_with};
use crate::plan::Plan;
use crate::table::Table;
use std::sync::Arc;

/// A reusable plan template with named parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedPlan {
    plan: Plan,
}

impl PreparedPlan {
    /// Wrap a plan (typically containing `Param` leaves) for reuse.
    pub fn new(plan: Plan) -> Self {
        PreparedPlan { plan }
    }

    /// The underlying plan template.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Execute with the default engine: zero-clone scans and index-probing
    /// `IndexJoin`s.
    pub fn execute(&self, catalog: &Catalog, bindings: &Bindings) -> Result<Arc<Table>> {
        execute_with(&self.plan, catalog, bindings)
    }

    /// [`Self::execute`] under an optional cooperative budget: the
    /// candidate-scoring operators charge `limits` per candidate and stop
    /// cleanly on exhaustion, returning the anytime answer built so far (see
    /// [`crate::execute_with_limits`]).
    pub fn execute_limited(
        &self,
        catalog: &Catalog,
        bindings: &Bindings,
        limits: Option<&crate::limits::ExecLimits>,
    ) -> Result<Arc<Table>> {
        crate::exec::execute_with_limits(&self.plan, catalog, bindings, limits)
    }

    /// Execute under the pre-refactor cost model (clone-per-scan, per-query
    /// full-table hash builds). Byte-identical output to [`Self::execute`];
    /// exists for equivalence tests and as the benchmark baseline.
    pub fn execute_unindexed(&self, catalog: &Catalog, bindings: &Bindings) -> Result<Arc<Table>> {
        execute_naive(&self.plan, catalog, bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::value::DataType;
    use crate::TableBuilder;

    #[test]
    fn prepared_plan_executes_repeatedly_with_different_bindings() {
        let base = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .row(vec![1.into(), "ab".into()])
            .row(vec![2.into(), "ab".into()])
            .row(vec![2.into(), "cd".into()])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register_indexed("base", base, &["token"]).unwrap();
        let prepared = PreparedPlan::new(
            Plan::index_join("base", &["token"], Plan::param("q"), &["token"])
                .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]),
        );
        assert_eq!(prepared.plan().node_count(), 3);

        let q1 = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["ab".into()])
            .build()
            .unwrap();
        let b1 = Bindings::new().with_table("q", q1);
        assert_eq!(prepared.execute(&catalog, &b1).unwrap().num_rows(), 2);
        assert_eq!(prepared.execute_unindexed(&catalog, &b1).unwrap().num_rows(), 2);

        let q2 = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["cd".into()])
            .build()
            .unwrap();
        let b2 = Bindings::new().with_table("q", q2);
        let r2 = prepared.execute(&catalog, &b2).unwrap();
        assert_eq!(r2.num_rows(), 1);
        assert_eq!(r2.value(0, "tid").unwrap().as_i64().unwrap(), 2);
    }
}
