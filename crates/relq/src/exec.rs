//! Plan execution: evaluates a [`Plan`] against a [`Catalog`] and produces a
//! materialized table behind a shared handle.
//!
//! ## Zero-clone scans and two execution modes
//!
//! Tables live in the catalog as `Arc<Table>`; `Plan::Scan` (and
//! `Plan::Param`) produce that shared handle directly, so a query plan never
//! copies base-relation rows. `Plan::IndexJoin` probes the persistent index
//! built at registration time ([`Catalog::register_indexed`]), touching only
//! the rows whose key appears on the (small) probe side.
//!
//! [`execute_naive`] preserves the pre-refactor cost model — every scan
//! deep-clones its table and every `IndexJoin` degenerates to a hash join
//! that re-builds a hash table over the *full* base relation — and is kept as
//! the equivalence baseline: both modes emit rows in identical order, so
//! results (including floating-point aggregate sums) are byte-identical.
//! Equivalence tests and the engine benchmarks rely on exactly that.

use crate::agg::{Accumulator, AggFunc, Aggregate};
use crate::bindings::Bindings;
use crate::catalog::Catalog;
use crate::error::{RelqError, Result};
use crate::plan::{Plan, ProjectItem, SortOrder};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Row, Value};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

/// Execute a plan against the catalog (no parameters), returning a shared
/// handle to the result. When the plan root is itself a scan, the handle
/// aliases the catalog's storage — no rows are copied anywhere.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Arc<Table>> {
    execute_with(plan, catalog, &Bindings::new())
}

/// Execute a plan with per-query [`Bindings`] for its `Param` leaves.
pub fn execute_with(plan: &Plan, catalog: &Catalog, bindings: &Bindings) -> Result<Arc<Table>> {
    execute_with_limits(plan, catalog, bindings, None)
}

/// [`execute_with`], under an optional cooperative budget. Candidate-scoring
/// operators (the bounded traversals and the aggregate-row assembly every
/// scan-mode scoring pipeline funnels through) charge the limits per
/// candidate and stop cleanly on exhaustion, returning the anytime answer
/// built so far — every emitted row fully scored, only coverage truncated.
/// Callers detect degradation via [`ExecLimits::exhausted`](crate::ExecLimits::exhausted).
pub fn execute_with_limits(
    plan: &Plan,
    catalog: &Catalog,
    bindings: &Bindings,
    limits: Option<&crate::limits::ExecLimits>,
) -> Result<Arc<Table>> {
    let ctx = ExecCtx { catalog, bindings, naive: false, limits };
    Ok(eval(plan, &ctx)?.into_shared())
}

/// Execute a plan under the pre-refactor cost model: scans deep-clone their
/// tables and `IndexJoin` nodes run as per-query hash joins that build over
/// the full base relation. Row emission order matches [`execute_with`]
/// exactly, so the two modes produce byte-identical results — this is the
/// baseline the equivalence tests and the engine benchmark compare against.
/// Never budgeted: it is the exhaustive reference the anytime answers are
/// differentially checked against.
pub fn execute_naive(plan: &Plan, catalog: &Catalog, bindings: &Bindings) -> Result<Arc<Table>> {
    let ctx = ExecCtx { catalog, bindings, naive: true, limits: None };
    Ok(eval(plan, &ctx)?.into_shared())
}

struct ExecCtx<'a> {
    catalog: &'a Catalog,
    bindings: &'a Bindings,
    naive: bool,
    /// Cooperative budget for candidate-scoring operators (`None` = no caps).
    limits: Option<&'a crate::limits::ExecLimits>,
}

/// An intermediate relation: either a shared base table or an operator's own
/// materialized output. Operators borrow rows; only the ones that truly need
/// owned rows (sort, limit, distinct, union) pay a copy, and only when their
/// input is shared.
enum Rel {
    Shared(Arc<Table>),
    Owned(Table),
}

impl Rel {
    fn as_table(&self) -> &Table {
        match self {
            Rel::Shared(t) => t,
            Rel::Owned(t) => t,
        }
    }

    fn into_shared(self) -> Arc<Table> {
        match self {
            Rel::Shared(t) => t,
            Rel::Owned(t) => Arc::new(t),
        }
    }

    fn into_schema_and_rows(self) -> (Schema, Vec<Row>) {
        match self {
            Rel::Shared(t) => (t.schema().clone(), t.rows().to_vec()),
            Rel::Owned(t) => {
                let schema = t.schema().clone();
                (schema, t.into_rows())
            }
        }
    }
}

/// Resolve an expression's scalar parameters against the context bindings
/// (borrowing when the expression has none, the common case).
fn resolve<'e>(expr: &'e crate::expr::Expr, ctx: &ExecCtx) -> Result<Cow<'e, crate::expr::Expr>> {
    if expr.has_params() {
        Ok(Cow::Owned(expr.bind(ctx.bindings)?))
    } else {
        Ok(Cow::Borrowed(expr))
    }
}

fn eval(plan: &Plan, ctx: &ExecCtx) -> Result<Rel> {
    match plan {
        Plan::Scan { table } => {
            if ctx.naive {
                // Pre-refactor semantics: every scan deep-clones the table.
                Ok(Rel::Owned(ctx.catalog.get(table)?.clone()))
            } else {
                Ok(Rel::Shared(ctx.catalog.get_shared(table)?))
            }
        }
        Plan::Values { table } => Ok(Rel::Owned(table.clone())),
        Plan::Param { name } => {
            let table = ctx.bindings.table(name)?.clone();
            if ctx.naive {
                Ok(Rel::Owned((*table).clone()))
            } else {
                Ok(Rel::Shared(table))
            }
        }
        Plan::Filter { input, predicate } => {
            // Fused fast paths: a filter directly above a projection or an
            // aggregation — the shape of every prepared threshold plan's
            // `score >= τ` selection — tests each output row as it is
            // assembled and materializes only the survivors, instead of
            // building the full scored table and then dropping most of it.
            // Row evaluation order is unchanged, so results are
            // byte-identical to the unfused pipeline (the naive mode
            // deliberately keeps the materialize-then-filter cost model).
            if !ctx.naive {
                match input.as_ref() {
                    Plan::Project { input: inner, items } => {
                        return Ok(Rel::Owned(filter_project(ctx, inner, items, predicate)?));
                    }
                    Plan::Aggregate { input: inner, group_by, aggregates } => {
                        return Ok(Rel::Owned(eval_aggregate(
                            ctx,
                            inner,
                            group_by,
                            aggregates,
                            Some(predicate),
                        )?));
                    }
                    _ => {}
                }
            }
            let input = eval(input, ctx)?;
            let table = input.as_table();
            let schema = table.schema();
            let mut rows = Vec::new();
            if !table.is_empty() {
                let predicate = resolve(predicate, ctx)?.compile(schema)?;
                for row in table.rows() {
                    if predicate.evaluate(row)?.as_bool()? {
                        rows.push(row.clone());
                    }
                }
            }
            Ok(Rel::Owned(Table::from_parts_unchecked(schema.clone(), rows)))
        }
        Plan::Project { input, items } => {
            let input = eval(input, ctx)?;
            Ok(Rel::Owned(project(input.as_table(), items, ctx)?))
        }
        Plan::HashJoin { left, right, left_keys, right_keys, suffix } => {
            let left = eval(left, ctx)?;
            let right = eval(right, ctx)?;
            Ok(Rel::Owned(hash_join(
                left.as_table(),
                right.as_table(),
                left_keys,
                right_keys,
                suffix,
                BuildSide::Smaller,
            )?))
        }
        Plan::IndexJoin { base, base_keys, probe, probe_keys, suffix } => {
            let probe_rel = eval(probe, ctx)?;
            let probe_table = probe_rel.as_table();
            if ctx.naive {
                // Pre-refactor path: re-build a hash table over the FULL base
                // relation for every execution. Building on the base (left)
                // side makes the emission order match the index probe below,
                // keeping the two modes byte-identical.
                let base_table = ctx.catalog.get(base)?;
                Ok(Rel::Owned(hash_join(
                    base_table,
                    probe_table,
                    base_keys,
                    probe_keys,
                    suffix,
                    BuildSide::Left,
                )?))
            } else {
                Ok(Rel::Owned(index_join(
                    ctx.catalog,
                    base,
                    base_keys,
                    probe_table,
                    probe_keys,
                    suffix,
                )?))
            }
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            Ok(Rel::Owned(eval_aggregate(ctx, input, group_by, aggregates, None)?))
        }
        Plan::Sort { input, keys } => {
            let input = eval(input, ctx)?;
            Ok(Rel::Owned(sort(input, keys)?))
        }
        Plan::Limit { input, count } => {
            // Clone only the rows that survive the limit; a shared input must
            // not pay for the rows being dropped.
            let limited = match eval(input, ctx)? {
                Rel::Shared(t) => {
                    let rows: Vec<Row> = t.rows().iter().take(*count).cloned().collect();
                    Table::from_parts_unchecked(t.schema().clone(), rows)
                }
                Rel::Owned(t) => {
                    let schema = t.schema().clone();
                    let mut rows = t.into_rows();
                    rows.truncate(*count);
                    Table::from_parts_unchecked(schema, rows)
                }
            };
            Ok(Rel::Owned(limited))
        }
        Plan::TopK { input, k, keys } => {
            let k = eval_top_k_count(k, ctx)?;
            // Fused fast path: top-k directly over a projection evaluates
            // the projected row into a reusable scratch buffer and allocates
            // an owned row only when it enters the heap — the full projected
            // candidate table (one allocation per candidate) is never
            // materialized. Row-wise evaluation order is unchanged, so
            // results and errors are identical to the unfused pipeline.
            if !ctx.naive {
                if let Plan::Project { input: inner, items } = input.as_ref() {
                    return Ok(Rel::Owned(top_k_project(ctx, inner, items, k, keys)?));
                }
            }
            let input = eval(input, ctx)?;
            let key_idx = key_indices(input.as_table().schema(), keys)?;
            if ctx.naive {
                // Pre-refactor cost model: full stable sort, then truncate —
                // the rank-everything-then-cut baseline TopK replaces.
                let (schema, mut rows) = input.into_schema_and_rows();
                sort_rows(&mut rows, &key_idx);
                rows.truncate(k);
                Ok(Rel::Owned(Table::from_parts_unchecked(schema, rows)))
            } else {
                Ok(Rel::Owned(top_k(input.as_table(), k, &key_idx)))
            }
        }
        Plan::TopKBounded { base, probe, token_col, factor_col, k } => {
            let k = eval_top_k_count(k, ctx)?;
            let probe_rel = eval(probe, ctx)?;
            Ok(Rel::Owned(top_k_bounded(
                ctx,
                base,
                probe_rel.as_table(),
                token_col,
                factor_col.as_deref(),
                k,
            )?))
        }
        Plan::ThresholdBounded { base, probe, token_col, factor_col, tau } => {
            let tau = eval_scalar_f64(tau, ctx)?;
            let probe_rel = eval(probe, ctx)?;
            Ok(Rel::Owned(threshold_bounded(
                ctx,
                base,
                probe_rel.as_table(),
                token_col,
                factor_col.as_deref(),
                tau,
            )?))
        }
        Plan::Distinct { input } => {
            let input = eval(input, ctx)?;
            Ok(Rel::Owned(distinct(input)))
        }
        Plan::UnionAll { left, right } => {
            let left = eval(left, ctx)?;
            let right = eval(right, ctx)?;
            left.as_table().schema().check_union_compatible(right.as_table().schema())?;
            let (schema, mut rows) = left.into_schema_and_rows();
            rows.extend(right.into_schema_and_rows().1);
            Ok(Rel::Owned(Table::from_parts_unchecked(schema, rows)))
        }
    }
}

/// Output schema of a projection. Types are derived from the expressions
/// themselves whenever possible, so empty inputs keep correct column types
/// (they used to be guessed from the first row only). The first-row probe
/// remains a fallback for shapes the static derivation cannot see (e.g. a
/// column holding NULLs typed only by its values); Float is the last resort
/// because weights and scores dominate this workload.
fn projection_schema(
    input: &Table,
    items: &[ProjectItem],
    exprs: &[Cow<crate::expr::Expr>],
) -> Schema {
    let in_schema = input.schema();
    let mut fields = Vec::with_capacity(items.len());
    for (item, expr) in items.iter().zip(exprs) {
        let dtype = expr
            .output_type(in_schema)
            .or_else(|| {
                input
                    .rows()
                    .first()
                    .and_then(|row| expr.evaluate(row, in_schema).ok())
                    .and_then(|v| v.data_type())
            })
            .unwrap_or(DataType::Float);
        fields.push(Field::new(item.alias.clone(), dtype));
    }
    Schema::new(fields)
}

fn project(input: &Table, items: &[ProjectItem], ctx: &ExecCtx) -> Result<Table> {
    let in_schema = input.schema();
    let exprs: Vec<Cow<crate::expr::Expr>> =
        items.iter().map(|item| resolve(&item.expr, ctx)).collect::<Result<_>>()?;
    let out_schema = projection_schema(input, items, &exprs);
    if input.is_empty() {
        return Ok(Table::empty(out_schema));
    }
    // Compile once so per-row evaluation does no column-name lookups; a
    // compile failure (unknown column) is the same error evaluating the
    // first row would have produced.
    let compiled: Vec<crate::expr::CompiledExpr> =
        exprs.iter().map(|e| e.compile(in_schema)).collect::<Result<_>>()?;
    let mut rows = Vec::with_capacity(input.num_rows());
    for row in input.rows() {
        let mut out = Vec::with_capacity(items.len());
        for expr in &compiled {
            out.push(expr.evaluate(row)?);
        }
        rows.push(out);
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

/// Which side a hash join builds its table on. The build side is a pure
/// implementation choice: it never changes the emitted row **order** (see
/// [`hash_join`]), only which input pays for the hash table.
#[derive(Clone, Copy, PartialEq)]
enum BuildSide {
    /// Build on the smaller input (the planner default). Emission stays
    /// **left-major** regardless of which side is smaller: row order — and
    /// therefore the accumulation order of any float aggregate downstream —
    /// must not depend on input cardinalities, or the same logical query
    /// over differently partitioned data drifts by ULPs.
    Smaller,
    /// Always build on the left input and emit **probe-major**. Used by the
    /// naive lowering of `IndexJoin` so row emission order matches the
    /// index probe.
    Left,
}

fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[String],
    right_keys: &[String],
    suffix: &str,
    build_side: BuildSide,
) -> Result<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(RelqError::InvalidPlan(format!(
            "join key lists must be equal length and non-empty: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let left_idx: Vec<usize> =
        left_keys.iter().map(|k| left.schema().index_of(k)).collect::<Result<_>>()?;
    let right_idx: Vec<usize> =
        right_keys.iter().map(|k| right.schema().index_of(k)).collect::<Result<_>>()?;

    let build_left = match build_side {
        BuildSide::Smaller => left.num_rows() <= right.num_rows(),
        BuildSide::Left => true,
    };
    let (build, build_idx, probe, probe_idx) = if build_left {
        (left, &left_idx, right, &right_idx)
    } else {
        (right, &right_idx, left, &left_idx)
    };

    let mut hash_table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (row_no, row) in build.rows().iter().enumerate() {
        let key: Vec<Value> = build_idx.iter().map(|&i| row[i].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue; // SQL equality never matches NULL keys.
        }
        hash_table.entry(key).or_default().push(row_no);
    }

    let out_schema = left.schema().join(right.schema(), suffix);
    let emit = |lrow: &Row, rrow: &Row| {
        let mut out = Vec::with_capacity(out_schema.len());
        out.extend(lrow.iter().cloned());
        out.extend(rrow.iter().cloned());
        out
    };
    let mut rows = Vec::new();
    if build_side == BuildSide::Smaller && build_left {
        // The probe side is the RIGHT input here, but emission must stay
        // left-major (the order a build-on-right probe would produce):
        // collect the matching (left, right) row-number pairs and sort.
        // Bucket lists hold ascending row numbers, so the sorted pairs are
        // exactly "for each left row in order, its right matches in table
        // order" — byte-identical to the build-on-right emission.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (probe_no, probe_row) in probe.rows().iter().enumerate() {
            let key: Vec<Value> = probe_idx.iter().map(|&i| probe_row[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = hash_table.get(&key) {
                pairs.extend(matches.iter().map(|&build_no| (build_no, probe_no)));
            }
        }
        pairs.sort_unstable();
        rows.extend(pairs.into_iter().map(|(l, r)| emit(&left.rows()[l], &right.rows()[r])));
    } else {
        for probe_row in probe.rows() {
            let key: Vec<Value> = probe_idx.iter().map(|&i| probe_row[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = hash_table.get(&key) {
                for &build_no in matches {
                    let build_row = &build.rows()[build_no];
                    let (lrow, rrow) =
                        if build_left { (build_row, probe_row) } else { (probe_row, build_row) };
                    rows.push(emit(lrow, rrow));
                }
            }
        }
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

/// Probe the persistent index of `base` with the probe table's key values.
/// Per probe row this touches exactly the base rows carrying its key — the
/// base relation itself is never scanned. Emission is probe-major with base
/// matches in table order, identical to a hash join built on the base side.
fn index_join(
    catalog: &Catalog,
    base: &str,
    base_keys: &[String],
    probe: &Table,
    probe_keys: &[String],
    suffix: &str,
) -> Result<Table> {
    if base_keys.len() != probe_keys.len() || base_keys.is_empty() {
        return Err(RelqError::InvalidPlan(format!(
            "join key lists must be equal length and non-empty: {} vs {}",
            base_keys.len(),
            probe_keys.len()
        )));
    }
    let base_table = catalog.get(base)?;
    let index = catalog.index_for(base, base_keys).ok_or_else(|| RelqError::MissingIndex {
        table: base.to_string(),
        keys: base_keys.to_vec(),
    })?;
    let probe_idx: Vec<usize> =
        probe_keys.iter().map(|k| probe.schema().index_of(k)).collect::<Result<_>>()?;
    let out_schema = base_table.schema().join(probe.schema(), suffix);
    let base_rows = base_table.rows();
    let mut rows = Vec::new();
    let mut key = Vec::with_capacity(probe_idx.len());
    for probe_row in probe.rows() {
        key.clear();
        key.extend(probe_idx.iter().map(|&i| probe_row[i].clone()));
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(ids) = index.lookup(&key) {
            for &rid in ids {
                let base_row = &base_rows[rid as usize];
                let mut out = Vec::with_capacity(out_schema.len());
                out.extend(base_row.iter().cloned());
                out.extend(probe_row.iter().cloned());
                rows.push(out);
            }
        }
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

/// Evaluate an aggregation node, dispatching to the fused
/// `Aggregate(IndexJoin)` pipeline in indexed mode, with an optional output
/// filter applied while the result rows are assembled (the fused lowering of
/// `Filter(Aggregate(..))` — see the `Plan::Filter` arm of [`eval`]).
fn eval_aggregate(
    ctx: &ExecCtx,
    input: &Plan,
    group_by: &[String],
    aggregates: &[Aggregate],
    output_filter: Option<&crate::expr::Expr>,
) -> Result<Table> {
    // Fused fast path: aggregation directly over an index probe feeds each
    // virtual joined row straight into the group accumulators, never
    // materializing join output. Emission order matches the materialized
    // path, so results stay byte-identical (the naive mode deliberately
    // keeps the unfused pre-refactor pipeline).
    if !ctx.naive {
        if let Plan::IndexJoin { base, base_keys, probe, probe_keys, suffix } = input {
            return index_join_aggregate(
                ctx,
                base,
                base_keys,
                probe,
                probe_keys,
                suffix,
                group_by,
                aggregates,
                output_filter,
            );
        }
    }
    let input = eval(input, ctx)?;
    aggregate(input.as_table(), group_by, aggregates, ctx, output_filter)
}

/// Compile an aggregate-output filter against the output schema, assemble
/// each `group key ++ finished accumulators` row, and keep the rows the
/// filter admits — shared tail of [`index_join_aggregate`] and
/// [`aggregate`]. The filter is compiled only when there is at least one row
/// to assemble, matching the unfused `Filter` operator (which never compiles
/// its predicate over an empty input).
fn assemble_aggregate_rows(
    ctx: &ExecCtx,
    out_schema: &Schema,
    order: Vec<Row>,
    accumulators: Vec<Vec<Accumulator>>,
    output_filter: Option<&crate::expr::Expr>,
) -> Result<Vec<Row>> {
    let filter = match output_filter {
        Some(expr) if !order.is_empty() => Some(resolve(expr, ctx)?.compile(out_schema)?),
        _ => None,
    };
    let mut rows = Vec::with_capacity(order.len());
    for (key, accs) in order.into_iter().zip(accumulators) {
        // Budget cut point for the exhaustive scoring pipelines: each
        // assembled row is one fully-accumulated candidate (its aggregates
        // finished before assembly began), so stopping here truncates
        // coverage without ever emitting a partially-scored row — the rows
        // assembled so far are a valid anytime answer.
        if let Some(limits) = ctx.limits {
            if !limits.charge_candidate() {
                break;
            }
        }
        crate::fault::fault_point("relq.aggregate.row");
        let mut row = key;
        for acc in accs {
            row.push(acc.finish());
        }
        if let Some(f) = &filter {
            if !f.evaluate(&row)?.as_bool()? {
                continue;
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Fused execution of `Aggregate(IndexJoin(base, probe))`: probes the base
/// index and feeds each *virtual* joined row (base slice + probe slice, never
/// concatenated) straight into the group accumulators through compiled,
/// index-resolved expressions. Join output is never materialized and no
/// per-row name lookups happen — this is where the indexed engine's
/// query-time win over the naive full-join path comes from. Rows are visited
/// in exactly the order the materialized pipeline would emit them, so group
/// order and floating-point accumulation are byte-identical to it.
#[allow(clippy::too_many_arguments)]
fn index_join_aggregate(
    ctx: &ExecCtx,
    base: &str,
    base_keys: &[String],
    probe_plan: &Plan,
    probe_keys: &[String],
    suffix: &str,
    group_by: &[String],
    aggregates: &[Aggregate],
    output_filter: Option<&crate::expr::Expr>,
) -> Result<Table> {
    let probe_rel = eval(probe_plan, ctx)?;
    let probe = probe_rel.as_table();
    if base_keys.len() != probe_keys.len() || base_keys.is_empty() {
        return Err(RelqError::InvalidPlan(format!(
            "join key lists must be equal length and non-empty: {} vs {}",
            base_keys.len(),
            probe_keys.len()
        )));
    }
    let base_table = ctx.catalog.get(base)?;
    let index = ctx.catalog.index_for(base, base_keys).ok_or_else(|| RelqError::MissingIndex {
        table: base.to_string(),
        keys: base_keys.to_vec(),
    })?;
    let probe_idx: Vec<usize> =
        probe_keys.iter().map(|k| probe.schema().index_of(k)).collect::<Result<_>>()?;
    let joined_schema = base_table.schema().join(probe.schema(), suffix);
    let split = base_table.schema().len();

    let group_idx: Vec<usize> =
        group_by.iter().map(|k| joined_schema.index_of(k)).collect::<Result<_>>()?;
    let mut fields = Vec::new();
    for &i in &group_idx {
        fields.push(joined_schema.field(i).clone());
    }
    for agg in aggregates {
        fields.push(Field::new(agg.alias.clone(), agg.output_type()));
    }
    let out_schema = Schema::new(fields);

    // Compile each aggregate once. SUM/MIN/MAX over float-safe expressions
    // update their accumulators through the unboxed f64 evaluator (bit
    // identical to the generic path, see `FloatExpr`); everything else goes
    // through the compiled generic evaluator.
    use crate::expr::{FloatExpr, FloatExprType};
    enum FastAgg {
        CountStar,
        SumF(FloatExpr),
        MinF(FloatExpr),
        MaxF(FloatExpr),
        Generic(crate::expr::CompiledExpr),
    }
    let fast_aggs: Vec<FastAgg> = aggregates
        .iter()
        .map(|agg| {
            Ok(match &agg.func {
                AggFunc::CountStar => FastAgg::CountStar,
                AggFunc::Sum(e) => {
                    let e = resolve(e, ctx)?;
                    // SUM coerces every input to f64 and always emits Float,
                    // so any float-safe expression qualifies.
                    match FloatExpr::from_expr(&e, &joined_schema) {
                        Some((f, _)) => FastAgg::SumF(f),
                        None => FastAgg::Generic(e.compile(&joined_schema)?),
                    }
                }
                AggFunc::Min(e) | AggFunc::Max(e) => {
                    let is_max = matches!(&agg.func, AggFunc::Max(_));
                    let e = resolve(e, ctx)?;
                    // MIN/MAX return the input value itself, so the fast path
                    // additionally requires the result to be Float-typed
                    // (a bare Int column must keep producing Value::Int).
                    match FloatExpr::from_expr(&e, &joined_schema) {
                        Some((f, FloatExprType::Float)) => {
                            if is_max {
                                FastAgg::MaxF(f)
                            } else {
                                FastAgg::MinF(f)
                            }
                        }
                        _ => FastAgg::Generic(e.compile(&joined_schema)?),
                    }
                }
                AggFunc::Count(e) | AggFunc::CountDistinct(e) | AggFunc::Avg(e) => {
                    FastAgg::Generic(resolve(e, ctx)?.compile(&joined_schema)?)
                }
            })
        })
        .collect::<Result<_>>()?;

    // Group slots in first-seen order, exactly like `aggregate`. Single-column
    // keys (the dominant GROUP BY tid shape) skip the per-row key vector, and
    // when that column is a base-side Int with a compact range (known from
    // the registration-time statistics) the lookup is a dense array instead
    // of a hash map — the layout the paper's native inverted-index engines
    // use. The lookup structure never changes accumulation order, so all
    // variants stay byte-identical.
    enum Groups {
        Dense { offset: i64, slots: Vec<u32>, other: HashMap<Value, usize> },
        Single(HashMap<Value, usize>),
        Multi(HashMap<Vec<Value>, usize>),
    }
    let base_rows = base_table.rows();
    let mut probe_key: Vec<Value> = Vec::with_capacity(probe_idx.len());
    // Pre-size the probe: one cheap index lookup per probe row tells us the
    // total number of matches this query will touch. The dense slot array is
    // only worth its allocation + memset when the match volume justifies it —
    // keyed on the *query's* work, not the corpus size, so a tiny query over
    // a huge base never pays an O(corpus) setup cost.
    let mut estimated_matches: usize = 0;
    for probe_row in probe.rows() {
        probe_key.clear();
        probe_key.extend(probe_idx.iter().map(|&i| probe_row[i].clone()));
        if probe_key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(ids) = index.lookup(&probe_key) {
            estimated_matches += ids.len();
        }
    }
    let dense_range = if group_idx.len() == 1 && group_idx[0] < split {
        ctx.catalog.int_column_range(base, group_idx[0]).and_then(|(lo, hi)| {
            let span = (hi as i128 - lo as i128) as u128 + 1;
            let budget = (32 * estimated_matches).max(1024) as u128;
            (span <= budget).then_some((lo, span as usize))
        })
    } else {
        None
    };
    let mut groups = match dense_range {
        Some((offset, span)) => {
            Groups::Dense { offset, slots: vec![u32::MAX; span], other: HashMap::new() }
        }
        None if group_idx.len() == 1 => Groups::Single(HashMap::new()),
        None => Groups::Multi(HashMap::new()),
    };
    let mut order: Vec<Row> = Vec::new();
    let mut accumulators: Vec<Vec<Accumulator>> = Vec::new();
    let mut key_buf: Vec<Value> = Vec::with_capacity(group_idx.len());

    for probe_row in probe.rows() {
        probe_key.clear();
        probe_key.extend(probe_idx.iter().map(|&i| probe_row[i].clone()));
        if probe_key.iter().any(Value::is_null) {
            continue;
        }
        let Some(ids) = index.lookup(&probe_key) else { continue };
        for &rid in ids {
            let base_row = &base_rows[rid as usize];
            let col_at = |i: usize| -> &Value {
                if i < split {
                    &base_row[i]
                } else {
                    &probe_row[i - split]
                }
            };
            let slot = match &mut groups {
                Groups::Dense { offset, slots, other } => {
                    let key = col_at(group_idx[0]);
                    if let Value::Int(v) = key {
                        let i = (*v - *offset) as usize;
                        let s = slots[i];
                        if s != u32::MAX {
                            s as usize
                        } else {
                            let s = order.len();
                            slots[i] = s as u32;
                            order.push(vec![key.clone()]);
                            accumulators.push(
                                aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect(),
                            );
                            s
                        }
                    } else {
                        // NULL group keys (the only non-Int values the stats
                        // pass admits) go through a side map.
                        match other.get(key) {
                            Some(&s) => s,
                            None => {
                                let s = order.len();
                                other.insert(key.clone(), s);
                                order.push(vec![key.clone()]);
                                accumulators.push(
                                    aggregates
                                        .iter()
                                        .map(|a| Accumulator::for_func(&a.func))
                                        .collect(),
                                );
                                s
                            }
                        }
                    }
                }
                Groups::Single(map) => {
                    let key = col_at(group_idx[0]);
                    match map.get(key) {
                        Some(&s) => s,
                        None => {
                            let s = order.len();
                            map.insert(key.clone(), s);
                            order.push(vec![key.clone()]);
                            accumulators.push(
                                aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect(),
                            );
                            s
                        }
                    }
                }
                Groups::Multi(map) => {
                    key_buf.clear();
                    key_buf.extend(group_idx.iter().map(|&i| col_at(i).clone()));
                    match map.get(key_buf.as_slice()) {
                        Some(&s) => s,
                        None => {
                            let s = order.len();
                            map.insert(key_buf.clone(), s);
                            order.push(key_buf.clone());
                            accumulators.push(
                                aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect(),
                            );
                            s
                        }
                    }
                }
            };
            for (acc, fast) in accumulators[slot].iter_mut().zip(&fast_aggs) {
                match (fast, acc) {
                    (FastAgg::CountStar, Accumulator::Count(n)) => *n += 1,
                    (FastAgg::SumF(e), Accumulator::Sum { total, seen }) => {
                        if let Some(x) = e.evaluate_split(base_row, probe_row, split)? {
                            *total += x;
                            *seen = true;
                        }
                    }
                    (FastAgg::MinF(e), Accumulator::Min(current)) => {
                        if let Some(x) = e.evaluate_split(base_row, probe_row, split)? {
                            let replace = match current {
                                None => true,
                                // Mirrors Value::total_cmp on floats: NaN
                                // never displaces an existing minimum.
                                Some(Value::Float(c)) => x < *c,
                                Some(c) => Value::Float(x).total_cmp(c) == std::cmp::Ordering::Less,
                            };
                            if replace {
                                *current = Some(Value::Float(x));
                            }
                        }
                    }
                    (FastAgg::MaxF(e), Accumulator::Max(current)) => {
                        if let Some(x) = e.evaluate_split(base_row, probe_row, split)? {
                            let replace = match current {
                                None => true,
                                Some(Value::Float(c)) => x > *c,
                                Some(c) => {
                                    Value::Float(x).total_cmp(c) == std::cmp::Ordering::Greater
                                }
                            };
                            if replace {
                                *current = Some(Value::Float(x));
                            }
                        }
                    }
                    (FastAgg::Generic(e), acc) => {
                        acc.update(Some(e.evaluate_split(base_row, probe_row, split)?))?;
                    }
                    // FastAgg variants are constructed from the same AggFunc
                    // the accumulator was, so the pairs always line up.
                    _ => unreachable!("fast aggregate paired with mismatched accumulator"),
                }
            }
        }
    }

    // Global aggregation over an empty stream still produces one row of
    // "empty" aggregates, matching SQL semantics (and `aggregate`).
    if order.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        accumulators.push(aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect());
    }

    let rows = assemble_aggregate_rows(ctx, &out_schema, order, accumulators, output_filter)?;
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

fn aggregate(
    input: &Table,
    group_by: &[String],
    aggregates: &[Aggregate],
    ctx: &ExecCtx,
    output_filter: Option<&crate::expr::Expr>,
) -> Result<Table> {
    let in_schema = input.schema();
    let group_idx: Vec<usize> =
        group_by.iter().map(|k| in_schema.index_of(k)).collect::<Result<_>>()?;

    // Output schema: group-by columns first (with their input types), then
    // one column per aggregate.
    let mut fields = Vec::new();
    for &i in &group_idx {
        fields.push(in_schema.field(i).clone());
    }
    for agg in aggregates {
        fields.push(Field::new(agg.alias.clone(), agg.output_type()));
    }
    let out_schema = Schema::new(fields);

    // Resolve aggregate argument expressions once (None = COUNT(*)).
    let arg_exprs: Vec<Option<Cow<crate::expr::Expr>>> = aggregates
        .iter()
        .map(|agg| match &agg.func {
            AggFunc::CountStar => Ok(None),
            AggFunc::Count(e)
            | AggFunc::CountDistinct(e)
            | AggFunc::Sum(e)
            | AggFunc::Min(e)
            | AggFunc::Max(e)
            | AggFunc::Avg(e) => resolve(e, ctx).map(Some),
        })
        .collect::<Result<_>>()?;

    // Group rows preserving first-seen order so results are deterministic.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accumulators: Vec<Vec<Accumulator>> = Vec::new();

    for row in input.rows() {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let slot = match groups.get(&key) {
            Some(&s) => s,
            None => {
                let s = order.len();
                groups.insert(key.clone(), s);
                order.push(key);
                accumulators
                    .push(aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect());
                s
            }
        };
        for (acc, expr) in accumulators[slot].iter_mut().zip(&arg_exprs) {
            let value = match expr {
                None => None,
                Some(e) => Some(e.evaluate(row, in_schema)?),
            };
            acc.update(value)?;
        }
    }

    // Global aggregation over an empty input still produces a single row of
    // "empty" aggregates, matching SQL semantics.
    if order.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        accumulators.push(aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect());
    }

    let rows = assemble_aggregate_rows(ctx, &out_schema, order, accumulators, output_filter)?;
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

fn sort(input: Rel, keys: &[(String, SortOrder)]) -> Result<Table> {
    let (schema, mut rows) = input.into_schema_and_rows();
    let key_idx = key_indices(&schema, keys)?;
    sort_rows(&mut rows, &key_idx);
    Ok(Table::from_parts_unchecked(schema, rows))
}

fn key_indices(schema: &Schema, keys: &[(String, SortOrder)]) -> Result<Vec<(usize, SortOrder)>> {
    keys.iter().map(|(name, order)| Ok((schema.index_of(name)?, *order))).collect()
}

/// Value comparison for ORDER BY / TopK keys: floats use the IEEE 754 total
/// order (`f64::total_cmp`: NaN greatest, -0.0 < 0.0) so plan-level ordering
/// matches the predicate layer's ranking comparator exactly even on the
/// degenerate values `Value::total_cmp` ties (it treats NaN as equal to
/// everything, which would let a plan-level top-k select a different
/// k-subset than a Rust-side sort). Everything else defers to
/// [`Value::total_cmp`].
fn compare_sort_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.total_cmp(y),
        _ => a.total_cmp(b),
    }
}

fn compare_rows(a: &Row, b: &Row, key_idx: &[(usize, SortOrder)]) -> std::cmp::Ordering {
    for &(idx, order) in key_idx {
        let ord = compare_sort_values(&a[idx], &b[idx]);
        let ord = match order {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Stable multi-key sort shared by `Sort` and the naive lowering of `TopK`.
fn sort_rows(rows: &mut [Row], key_idx: &[(usize, SortOrder)]) {
    rows.sort_by(|a, b| compare_rows(a, b, key_idx));
}

/// Resolve the `k` of a `TopK` node: a column-free scalar expression (a
/// literal or a bound parameter), evaluated once per execution.
fn eval_top_k_count(k: &crate::expr::Expr, ctx: &ExecCtx) -> Result<usize> {
    let empty_row: Row = Vec::new();
    let k = resolve(k, ctx)?.evaluate(&empty_row, &Schema::new(Vec::new()))?.as_i64()?;
    usize::try_from(k)
        .map_err(|_| RelqError::InvalidPlan(format!("TopK with negative row count {k}")))
}

/// Resolve the `τ` of a `ThresholdBounded` node: a column-free scalar
/// expression (a literal or a bound parameter, possibly transformed — e.g.
/// `param(τ).ln()` for log-space selections), evaluated once per execution.
fn eval_scalar_f64(expr: &crate::expr::Expr, ctx: &ExecCtx) -> Result<f64> {
    let empty_row: Row = Vec::new();
    resolve(expr, ctx)?.evaluate(&empty_row, &Schema::new(Vec::new()))?.as_f64()
}

/// Fused `Filter(Project(input))`: evaluates each projected row into a
/// scratch buffer, tests the filter predicate immediately, and materializes
/// only passing rows — the full projected table (one allocation per input
/// row) is never built just to be filtered down. Rows are evaluated in input
/// order exactly as the unfused pipeline does, so output rows and bytes are
/// identical; only the interleaving of projection-vs-filter *errors* can
/// differ (the unfused pipeline fully projects before filtering).
fn filter_project(
    ctx: &ExecCtx,
    inner: &Plan,
    items: &[ProjectItem],
    predicate: &crate::expr::Expr,
) -> Result<Table> {
    let inner_rel = eval(inner, ctx)?;
    let input = inner_rel.as_table();
    let exprs: Vec<Cow<crate::expr::Expr>> =
        items.iter().map(|item| resolve(&item.expr, ctx)).collect::<Result<_>>()?;
    let out_schema = projection_schema(input, items, &exprs);
    if input.is_empty() {
        return Ok(Table::empty(out_schema));
    }
    let in_schema = input.schema();
    let compiled: Vec<crate::expr::CompiledExpr> =
        exprs.iter().map(|e| e.compile(in_schema)).collect::<Result<_>>()?;
    let predicate = resolve(predicate, ctx)?.compile(&out_schema)?;
    let mut rows = Vec::new();
    let mut scratch: Row = Vec::with_capacity(compiled.len());
    for row in input.rows() {
        scratch.clear();
        for expr in &compiled {
            scratch.push(expr.evaluate(row)?);
        }
        if predicate.evaluate(&scratch)?.as_bool()? {
            rows.push(scratch.clone());
        }
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

/// Fused `TopK(Project(input))`: evaluates each projected row into a scratch
/// buffer, consults the heap's current worst entry, and allocates an owned
/// row only on acceptance. Every input row is still evaluated exactly once in
/// input order (so errors and results match the unfused `project` + `top_k`
/// pipeline byte for byte), but the `O(candidates)` projected table — one
/// small allocation per candidate — is never built; only `O(k log n)`
/// accepted rows are.
fn top_k_project(
    ctx: &ExecCtx,
    inner: &Plan,
    items: &[ProjectItem],
    k: usize,
    keys: &[(String, SortOrder)],
) -> Result<Table> {
    let inner_rel = eval(inner, ctx)?;
    let input = inner_rel.as_table();
    let exprs: Vec<Cow<crate::expr::Expr>> =
        items.iter().map(|item| resolve(&item.expr, ctx)).collect::<Result<_>>()?;
    let out_schema = projection_schema(input, items, &exprs);
    let key_idx = key_indices(&out_schema, keys)?;
    if input.is_empty() {
        return Ok(Table::empty(out_schema));
    }
    let in_schema = input.schema();
    let compiled: Vec<crate::expr::CompiledExpr> =
        exprs.iter().map(|e| e.compile(in_schema)).collect::<Result<_>>()?;

    let mut heap = crate::topk::BoundedHeap::new(k, |a: &(Row, u32), b: &(Row, u32)| {
        compare_rows(&a.0, &b.0, &key_idx).then_with(|| a.1.cmp(&b.1))
    });
    let mut scratch: Row = Vec::with_capacity(compiled.len());
    for (row_no, row) in input.rows().iter().enumerate() {
        scratch.clear();
        for expr in &compiled {
            scratch.push(expr.evaluate(row)?);
        }
        let accept = if heap.len() < k {
            true
        } else {
            match heap.worst() {
                // The heap is full: the candidate enters only if it ranks
                // strictly before the current worst kept row (later input
                // position never displaces an equal-keyed earlier row).
                Some(worst) => {
                    compare_rows(&scratch, &worst.0, &key_idx)
                        .then_with(|| (row_no as u32).cmp(&worst.1))
                        == std::cmp::Ordering::Less
                }
                None => false, // k == 0
            }
        };
        if accept {
            heap.offer((scratch.clone(), row_no as u32));
        }
    }
    let rows: Vec<Row> = heap.into_sorted().into_iter().map(|(row, _)| row).collect();
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

/// Order-preserving `u64` encoding of one sort-key value: unsigned compare
/// of the encodings equals [`compare_sort_values`] on the originals.
/// Floats map through the IEEE 754 total-order trick (negatives bit-flipped,
/// positives sign-flipped), Ints through a sign-bias; descending keys are
/// complemented. Returns `None` for values outside the homogeneous
/// Int-or-Float shape (NULLs, strings, mixed columns) — caller falls back.
fn encode_sort_key(value: &Value, as_float: bool, order: SortOrder) -> Option<u64> {
    let encoded = match (value, as_float) {
        (Value::Float(f), true) => {
            let bits = f.to_bits();
            if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            }
        }
        (Value::Int(i), false) => (*i as u64) ^ (1 << 63),
        _ => return None,
    };
    Some(match order {
        SortOrder::Ascending => encoded,
        SortOrder::Descending => !encoded,
    })
}

/// Bounded-heap top-k: keeps row *ids* only, so no row is cloned until it is
/// known to be among the k best. Ties beyond the key list are broken by input
/// row order, making the output element-for-element identical to the stable
/// `sort_rows` + `truncate` pipeline the naive mode runs.
///
/// When every key column holds a single primitive type (all-Int or
/// all-Float — the `(score DESC, tid ASC)` shape of every ranking plan), the
/// keys are pre-encoded into order-preserving `u64`s once and the heap
/// compares flat integer slices instead of dispatching on `Value` enums per
/// comparison — the fix for the heap pushdown occasionally measuring slower
/// than rank-then-truncate on aggregate-heavy plans.
fn top_k(input: &Table, k: usize, key_idx: &[(usize, SortOrder)]) -> Table {
    let rows = input.rows();
    let kept_ids: Vec<u32> = (|| {
        // Typed fast path: per-column representation decided by the first
        // row; any NULL or off-type value falls back to the generic compare.
        if rows.is_empty() || key_idx.is_empty() {
            return None;
        }
        let as_float: Vec<bool> = key_idx
            .iter()
            .map(|&(idx, _)| match &rows[0][idx] {
                Value::Float(_) => Some(true),
                Value::Int(_) => Some(false),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let stride = key_idx.len();
        let mut encoded: Vec<u64> = Vec::with_capacity(rows.len() * stride);
        for row in rows {
            for (&(idx, order), &is_float) in key_idx.iter().zip(&as_float) {
                encoded.push(encode_sort_key(&row[idx], is_float, order)?);
            }
        }
        let key_of = |row: u32| -> &[u64] {
            let start = row as usize * stride;
            &encoded[start..start + stride]
        };
        let mut heap = crate::topk::BoundedHeap::new(k, |a: &u32, b: &u32| {
            key_of(*a).cmp(key_of(*b)).then_with(|| a.cmp(b))
        });
        for row_no in 0..rows.len() as u32 {
            heap.offer(row_no);
        }
        Some(heap.into_sorted())
    })()
    .unwrap_or_else(|| {
        let mut heap = crate::topk::BoundedHeap::new(k, |a: &u32, b: &u32| {
            compare_rows(&rows[*a as usize], &rows[*b as usize], key_idx).then_with(|| a.cmp(b))
        });
        for row_no in 0..rows.len() as u32 {
            heap.offer(row_no);
        }
        heap.into_sorted()
    });
    let kept: Vec<Row> = kept_ids.into_iter().map(|i| rows[i as usize].clone()).collect();
    Table::from_parts_unchecked(input.schema().clone(), kept)
}

/// Execute [`Plan::TopKBounded`]: resolve the probe's `(token, factor)` rows
/// against the posting index of `base` and select the k best tids by their
/// summed scaled contributions.
///
/// The indexed mode runs the early-terminating max-score traversal
/// ([`crate::posting::MaxScoreTraversal`]); the naive mode keeps the
/// pre-refactor cost model — exhaustively score every posting in probe-major
/// order, stable-sort, truncate — which is byte-identical to the equivalent
/// `Aggregate + TopK` heap pipeline and serves as the equivalence baseline.
fn top_k_bounded(
    ctx: &ExecCtx,
    base: &str,
    probe: &Table,
    token_col: &str,
    factor_col: Option<&str>,
    k: usize,
) -> Result<Table> {
    let probes = gather_probes(ctx.catalog, base, probe, token_col, factor_col)?;
    let ranked: Vec<(i64, f64)> = if ctx.naive {
        let mut scores = score_exhaustive(probes);
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scores.truncate(k);
        scores
    } else {
        crate::posting::MaxScoreTraversal::new(probes, k)?.run(ctx.limits)
    };
    Ok(scored_tid_table(ranked))
}

/// Execute [`Plan::ThresholdBounded`]: resolve the probe's `(token, factor)`
/// rows against the posting index of `base` and select every tid whose
/// summed scaled contribution reaches `tau`.
///
/// The indexed mode runs the fixed-bar max-score traversal
/// ([`crate::posting::ThresholdTraversal`]); the naive mode keeps the
/// pre-refactor cost model — exhaustively score every posting in probe-major
/// order, filter by the exact `score >= τ`, sort. The two modes and the
/// equivalent `Filter(score >= τ, Aggregate(IndexJoin))` pipeline are all
/// bit-identical: a fixed τ has no tie class (see the posting-layer docs).
fn threshold_bounded(
    ctx: &ExecCtx,
    base: &str,
    probe: &Table,
    token_col: &str,
    factor_col: Option<&str>,
    tau: f64,
) -> Result<Table> {
    let probes = gather_probes(ctx.catalog, base, probe, token_col, factor_col)?;
    let selected: Vec<(i64, f64)> = if ctx.naive {
        let mut scores = score_exhaustive(probes);
        scores.retain(|&(_, score)| crate::posting::admits(score, tau));
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scores
    } else {
        crate::posting::ThresholdTraversal::new(probes, tau)?.run(ctx.limits)
    };
    Ok(scored_tid_table(selected))
}

/// Resolve a probe table's `(token, factor)` rows against the posting index
/// of `base`, in probe order: NULL tokens/factors never contribute (SQL join
/// / SUM semantics), unknown tokens have no list to probe.
fn gather_probes<'c>(
    catalog: &'c Catalog,
    base: &str,
    probe: &Table,
    token_col: &str,
    factor_col: Option<&str>,
) -> Result<Vec<(crate::posting::PostingList<'c>, f64)>> {
    let posting =
        catalog.posting_for(base).ok_or_else(|| RelqError::MissingPosting(base.to_string()))?;
    let token_idx = probe.schema().index_of(token_col)?;
    let factor_idx = factor_col.map(|c| probe.schema().index_of(c)).transpose()?;
    let mut probes: Vec<(crate::posting::PostingList<'c>, f64)> = Vec::new();
    for row in probe.rows() {
        let token = &row[token_idx];
        if token.is_null() {
            continue;
        }
        let factor = match factor_idx {
            None => 1.0,
            Some(i) => match &row[i] {
                Value::Null => continue,
                v => v.as_f64()?,
            },
        };
        if let Some(list) = posting.list(token) {
            probes.push((list, factor));
        }
    }
    Ok(probes)
}

/// Exhaustive scoring of every posting in probe-major order — the
/// accumulation order of the materializing aggregation pipeline, hence
/// byte-identical to it. The naive lowering of both bounded operators.
fn score_exhaustive(probes: Vec<(crate::posting::PostingList<'_>, f64)>) -> Vec<(i64, f64)> {
    let mut slots: HashMap<i64, usize> = HashMap::new();
    let mut scores: Vec<(i64, f64)> = Vec::new();
    for (list, factor) in probes {
        for (i, &tid) in list.tids().iter().enumerate() {
            match slots.get(&tid) {
                Some(&s) => scores[s].1 += factor * list.weights()[i],
                None => {
                    slots.insert(tid, scores.len());
                    scores.push((tid, factor * list.weights()[i]));
                }
            }
        }
    }
    scores
}

/// Materialize `(tid, score)` pairs as the canonical result table of the
/// bounded operators.
fn scored_tid_table(scored: Vec<(i64, f64)>) -> Table {
    let schema = Schema::from_pairs(&[("tid", DataType::Int), ("score", DataType::Float)]);
    let rows: Vec<Row> =
        scored.into_iter().map(|(tid, score)| vec![Value::Int(tid), Value::Float(score)]).collect();
    Table::from_parts_unchecked(schema, rows)
}

/// Per-query statistics of a bounded-probe shape — the inputs a cost-based
/// router needs to estimate how selective a bounded traversal would be,
/// gathered **without** running one.
///
/// Produced by [`probe_stats`]. When the base table carries a posting index
/// the statistics are exact (per-list lengths and weight maxima); without one
/// the equality index still supplies the list lengths, but the weight maxima
/// are unknown and `bound_sum` is `NaN` — callers supply their own analytic
/// bound in that case, or fall back to a [`sample_probe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeStats {
    /// Probe rows that matched a non-empty base list.
    pub lists: usize,
    /// Total postings across the matched lists (the sum of their lengths).
    pub postings: u64,
    /// Upper bound on any candidate's score: the sum over matched lists of
    /// `max stored weight × probe factor`. `NaN` when no posting index is
    /// attached (the per-list maxima are only measured by a posting build).
    pub bound_sum: f64,
}

/// Gather [`ProbeStats`] for a probe table's `(token, factor)` rows against
/// `base`, using the posting index when one is attached (exact `bound_sum`)
/// and the equality index on `token_col` otherwise (list lengths only,
/// `bound_sum = NaN`). NULL tokens/factors are skipped exactly as the
/// bounded operators skip them. This never builds an index and never touches
/// execution limits — it is a pure read of registration-time statistics.
pub fn probe_stats(
    catalog: &Catalog,
    base: &str,
    probe: &Table,
    token_col: &str,
    factor_col: Option<&str>,
) -> Result<ProbeStats> {
    let token_idx = probe.schema().index_of(token_col)?;
    let factor_idx = factor_col.map(|c| probe.schema().index_of(c)).transpose()?;
    let posting = catalog.posting_for(base);
    let key_cols = [token_col.to_string()];
    let equality = if posting.is_none() { catalog.index_for(base, &key_cols) } else { None };
    if posting.is_none() && equality.is_none() {
        return Err(RelqError::MissingIndex {
            table: base.to_string(),
            keys: vec![token_col.to_string()],
        });
    }
    let mut stats = ProbeStats { lists: 0, postings: 0, bound_sum: 0.0 };
    for row in probe.rows() {
        let token = &row[token_idx];
        if token.is_null() {
            continue;
        }
        let factor = match factor_idx {
            None => 1.0,
            Some(i) => match &row[i] {
                Value::Null => continue,
                v => v.as_f64()?,
            },
        };
        match posting {
            Some(p) => {
                if let Some(list) = p.list(token) {
                    stats.lists += 1;
                    stats.postings += list.len() as u64;
                    stats.bound_sum += factor * list.max_weight();
                }
            }
            None => {
                if let Some(matched) =
                    equality.expect("checked above").lookup(std::slice::from_ref(token))
                {
                    if !matched.is_empty() {
                        stats.lists += 1;
                        stats.postings += matched.len() as u64;
                    }
                }
            }
        }
    }
    if posting.is_none() {
        stats.bound_sum = f64::NAN;
    }
    Ok(stats)
}

/// The outcome of a [`sample_probe`]: how many of the first `limit`
/// candidates (ascending tid — a deterministic, bar-independent enumeration)
/// scored at or above the bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleProbe {
    /// Candidates actually scored (≤ the sample limit).
    pub sampled: u64,
    /// Sampled candidates whose exact score reached the bar.
    pub passing: u64,
    /// Whether the sample limit cut the enumeration short — when `false`,
    /// every candidate was scored and `passing / sampled` is the *exact*
    /// pass fraction, not an extrapolation.
    pub exhausted: bool,
}

/// Score a deterministic prefix of the candidate set exactly and count how
/// many reach `bar` — the sampling-based selectivity estimate of a
/// cost-based router. Candidates are enumerated in ascending tid order (the
/// enumeration is independent of `bar`, so the passing count is monotone
/// non-increasing in `bar` over a fixed corpus/query), each scored as the
/// full factor-scaled sum over the query's posting lists — the same exact
/// arithmetic the traversals use.
///
/// The probe requires a posting index on `base` (it reads the same lists the
/// bounded traversal would). It holds only local cursors: it never touches a
/// catalog, cache, or [`crate::ExecLimits`] — probing is free of side
/// effects and charges no execution budget. The `relq.route.probe` fault
/// site fires on entry (inert unless a fault hook is installed).
pub fn sample_probe(
    catalog: &Catalog,
    base: &str,
    probe: &Table,
    token_col: &str,
    factor_col: Option<&str>,
    bar: f64,
    limit: usize,
) -> Result<SampleProbe> {
    crate::fault::fault_point("relq.route.probe");
    let probes = gather_probes(catalog, base, probe, token_col, factor_col)?;
    let mut cursors = vec![0usize; probes.len()];
    let mut out = SampleProbe { sampled: 0, passing: 0, exhausted: false };
    loop {
        // The next candidate is the smallest unconsumed tid across lists.
        let mut next: Option<i64> = None;
        for (i, (list, _)) in probes.iter().enumerate() {
            if let Some(&tid) = list.tids().get(cursors[i]) {
                next = Some(next.map_or(tid, |n: i64| n.min(tid)));
            }
        }
        let Some(tid) = next else { break };
        if out.sampled as usize >= limit {
            out.exhausted = true;
            break;
        }
        let mut score = 0.0;
        for (i, (list, factor)) in probes.iter().enumerate() {
            if list.tids().get(cursors[i]) == Some(&tid) {
                score += factor * list.weights()[cursors[i]];
                cursors[i] += 1;
            }
        }
        out.sampled += 1;
        if crate::posting::admits(score, bar) {
            out.passing += 1;
        }
    }
    Ok(out)
}

fn distinct(input: Rel) -> Table {
    // Borrow the input and clone only first-seen rows: duplicates (and a
    // shared input's row store) are never copied.
    let table = input.as_table();
    let mut seen: std::collections::HashSet<&Row> = Default::default();
    let mut out: Vec<Row> = Vec::new();
    for row in table.rows() {
        if seen.insert(row) {
            out.push(row.clone());
        }
    }
    Table::from_parts_unchecked(table.schema().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, param};
    use crate::table::TableBuilder;

    fn catalog() -> Catalog {
        let base = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .row(vec![1.into(), "ab".into()])
            .row(vec![1.into(), "bc".into()])
            .row(vec![1.into(), "cd".into()])
            .row(vec![2.into(), "ab".into()])
            .row(vec![2.into(), "xy".into()])
            .row(vec![3.into(), "zz".into()])
            .build()
            .unwrap();
        let query = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["ab".into()])
            .row(vec!["cd".into()])
            .build()
            .unwrap();
        let mut c = Catalog::new();
        c.register_indexed("base_tokens", base, &["token"]).unwrap();
        c.register("query_tokens", query);
        c
    }

    #[test]
    fn intersect_size_plan_matches_hand_count() {
        // This is exactly Figure 4.1 of the paper: join on token, COUNT(*)
        // grouped by tid.
        let plan = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .sort_by("score", SortOrder::Descending);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(1));
        assert_eq!(result.value(0, "score").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "tid").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "score").unwrap(), &Value::Int(1));
    }

    #[test]
    fn index_join_matches_hash_join_and_scan_shares_storage() {
        let catalog = catalog();
        let hash = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .sort_by_many(vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)]);
        let indexed =
            Plan::index_join("base_tokens", &["token"], Plan::scan("query_tokens"), &["token"])
                .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
                .sort_by_many(vec![
                    ("score", SortOrder::Descending),
                    ("tid", SortOrder::Ascending),
                ]);
        let a = execute(&hash, &catalog).unwrap();
        let b = execute(&indexed, &catalog).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.schema(), b.schema());
        // A root-level scan returns the catalog's own storage.
        let scanned = execute(&Plan::scan("base_tokens"), &catalog).unwrap();
        let shared = catalog.get_shared("base_tokens").unwrap();
        assert!(Arc::ptr_eq(&scanned, &shared));
    }

    #[test]
    fn index_join_requires_an_index() {
        let plan =
            Plan::index_join("query_tokens", &["token"], Plan::scan("base_tokens"), &["token"]);
        assert!(matches!(execute(&plan, &catalog()), Err(RelqError::MissingIndex { .. })));
    }

    #[test]
    fn params_bind_tables_and_scalars() {
        let query = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["ab".into()])
            .build()
            .unwrap();
        let plan = Plan::index_join("base_tokens", &["token"], Plan::param("q"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "cnt")])
            .project(vec![(col("tid"), "tid"), (col("cnt").add(param("bias")), "score")]);
        let bindings = Bindings::new().with_table("q", query).with_scalar("bias", 100i64);
        let result = execute_with(&plan, &catalog(), &bindings).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, "score").unwrap(), &Value::Int(101));
        // Unbound execution fails loudly.
        assert!(matches!(execute(&plan, &catalog()), Err(RelqError::UnboundParam(_))));
    }

    #[test]
    fn naive_mode_is_byte_identical_to_indexed_mode() {
        let weights = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .column("weight", DataType::Float)
            .row(vec![1.into(), "ab".into(), 0.1.into()])
            .row(vec![2.into(), "ab".into(), 0.7.into()])
            .row(vec![1.into(), "cd".into(), 0.3.into()])
            .row(vec![3.into(), "cd".into(), 0.9.into()])
            .build()
            .unwrap();
        let mut c = Catalog::new();
        c.register_indexed("w", weights, &["token"]).unwrap();
        let q = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["cd".into()])
            .row(vec!["ab".into()])
            .build()
            .unwrap();
        let plan = Plan::index_join("w", &["token"], Plan::param("q"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::Sum(col("weight")), "score")]);
        let bindings = Bindings::new().with_table("q", q);
        let fast = execute_with(&plan, &c, &bindings).unwrap();
        let slow = execute_naive(&plan, &c, &bindings).unwrap();
        assert_eq!(fast.schema(), slow.schema());
        assert_eq!(fast.rows(), slow.rows());
    }

    #[test]
    fn filter_and_project() {
        let plan = Plan::scan("base_tokens")
            .filter(col("tid").eq(lit(1i64)))
            .project(vec![(col("token"), "t"), (col("tid").mul(lit(10i64)), "tid10")]);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 3);
        assert_eq!(result.schema().names(), vec!["t", "tid10"]);
        assert_eq!(result.value(0, "tid10").unwrap(), &Value::Int(10));
    }

    #[test]
    fn empty_projection_keeps_expression_types_and_feeds_joins() {
        // Regression test: output types used to be guessed from the first row
        // only, so an empty input degraded every column to Float and a
        // downstream join/union saw the wrong schema.
        let empty =
            Table::empty(Schema::from_pairs(&[("tid", DataType::Int), ("token", DataType::Str)]));
        let projected = Plan::values(empty)
            .project(vec![(col("token"), "token"), (col("tid").mul(lit(2i64)), "tid2")]);
        let result = execute(&projected, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 0);
        assert_eq!(result.schema().field(0).dtype, DataType::Str);
        assert_eq!(result.schema().field(1).dtype, DataType::Int);
        // The empty projection can feed a join...
        let joined = projected.clone().join_on(Plan::scan("query_tokens"), &["token"], &["token"]);
        let join_result = execute(&joined, &catalog()).unwrap();
        assert_eq!(join_result.num_rows(), 0);
        assert_eq!(join_result.schema().names(), vec!["token", "tid2", "token_r"]);
        assert_eq!(join_result.schema().field(0).dtype, DataType::Str);
        assert_eq!(join_result.schema().field(1).dtype, DataType::Int);
        // ...and stays union-compatible with a non-empty relation of the same
        // logical type (this errored before the fix: Float vs Str mismatch).
        let other = TableBuilder::new()
            .column("token", DataType::Str)
            .column("tid2", DataType::Int)
            .row(vec!["ab".into(), 4.into()])
            .build()
            .unwrap();
        let union = projected.union_all(Plan::values(other));
        assert_eq!(execute(&union, &catalog()).unwrap().num_rows(), 1);
    }

    #[test]
    fn join_renames_colliding_columns() {
        let plan =
            Plan::scan("base_tokens").join_on(Plan::scan("base_tokens"), &["token"], &["token"]);
        let result = execute(&plan, &catalog()).unwrap();
        assert!(result.schema().contains("token"));
        assert!(result.schema().contains("token_r"));
        assert!(result.schema().contains("tid_r"));
        // Self-join on token: 'ab' appears in tids {1,2} -> 4 pairs, others 1 each.
        assert_eq!(result.num_rows(), 4 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn aggregate_with_sum_min_max_avg() {
        let t = TableBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float)
            .row(vec!["a".into(), 1.0.into()])
            .row(vec!["a".into(), 3.0.into()])
            .row(vec!["b".into(), 10.0.into()])
            .build()
            .unwrap();
        let plan = Plan::values(t).aggregate(
            &["g"],
            vec![
                (AggFunc::Sum(col("v")), "s"),
                (AggFunc::Avg(col("v")), "a"),
                (AggFunc::Min(col("v")), "lo"),
                (AggFunc::Max(col("v")), "hi"),
                (AggFunc::CountStar, "n"),
            ],
        );
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, "s").unwrap(), &Value::Float(4.0));
        assert_eq!(result.value(0, "a").unwrap(), &Value::Float(2.0));
        assert_eq!(result.value(0, "lo").unwrap(), &Value::Float(1.0));
        assert_eq!(result.value(0, "hi").unwrap(), &Value::Float(3.0));
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = Plan::scan("base_tokens").aggregate(
            &[],
            vec![(AggFunc::CountStar, "n"), (AggFunc::CountDistinct(col("tid")), "d")],
        );
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(6));
        assert_eq!(result.value(0, "d").unwrap(), &Value::Int(3));
    }

    #[test]
    fn global_aggregate_on_empty_input_produces_one_row() {
        let empty = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let plan = Plan::values(empty).aggregate(&[], vec![(AggFunc::CountStar, "n")]);
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(0));
    }

    #[test]
    fn top_k_matches_sort_plus_limit_in_both_modes() {
        let catalog = catalog();
        let ordering = vec![("tid", SortOrder::Descending), ("token", SortOrder::Ascending)];
        let reference = Plan::scan("base_tokens").sort_by_many(ordering.clone()).limit(4);
        let top = Plan::scan("base_tokens").top_k(lit(4i64), ordering);
        let expected = execute(&reference, &catalog).unwrap();
        let fast = execute(&top, &catalog).unwrap();
        let slow = execute_naive(&top, &catalog, &Bindings::new()).unwrap();
        assert_eq!(fast.schema(), expected.schema());
        assert_eq!(fast.rows(), expected.rows());
        assert_eq!(slow.rows(), expected.rows());
    }

    #[test]
    fn top_k_takes_k_as_a_bound_parameter() {
        let catalog = catalog();
        let plan = Plan::scan("base_tokens")
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .top_k(
                param("k"),
                vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)],
            );
        for k in [0usize, 1, 2, 99] {
            let bindings = Bindings::new().with_scalar("k", k as i64);
            let result = execute_with(&plan, &catalog, &bindings).unwrap();
            assert_eq!(result.num_rows(), k.min(3), "k={k}");
            if k >= 1 {
                // tid 1 has three tokens: the largest group.
                assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(1));
                assert_eq!(result.value(0, "score").unwrap(), &Value::Int(3));
            }
        }
        // Unbound k fails loudly, like any other missing parameter.
        assert!(matches!(execute(&plan, &catalog), Err(RelqError::UnboundParam(_))));
    }

    #[test]
    fn top_k_rejects_negative_and_column_valued_k() {
        let catalog = catalog();
        let plan = Plan::scan("base_tokens").top_k(lit(-1i64), vec![("tid", SortOrder::Ascending)]);
        assert!(matches!(execute(&plan, &catalog), Err(RelqError::InvalidPlan(_))));
        let plan = Plan::scan("base_tokens").top_k(col("tid"), vec![("tid", SortOrder::Ascending)]);
        assert!(execute(&plan, &catalog).is_err());
    }

    #[test]
    fn fused_top_k_over_projection_matches_unfused_pipeline() {
        let catalog = catalog();
        let projected = Plan::scan("base_tokens")
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "cnt")])
            .project(vec![(col("tid"), "tid"), (col("cnt").mul(lit(2i64)), "score")]);
        let ordering = vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)];
        for k in [0usize, 1, 2, 10] {
            let top = projected.clone().top_k(lit(k as i64), ordering.clone());
            let reference = projected.clone().sort_by_many(ordering.clone()).limit(k);
            let fused = execute(&top, &catalog).unwrap();
            let expected = execute(&reference, &catalog).unwrap();
            assert_eq!(fused.schema(), expected.schema(), "k={k}");
            assert_eq!(fused.rows(), expected.rows(), "k={k}");
            // The naive lowering (sort + truncate over the materialized
            // projection) agrees too.
            let slow = execute_naive(&top, &catalog, &Bindings::new()).unwrap();
            assert_eq!(slow.rows(), expected.rows(), "k={k} (naive)");
        }
        // Empty input keeps the projection's derived schema.
        let empty = Plan::values(Table::empty(Schema::from_pairs(&[
            ("tid", DataType::Int),
            ("cnt", DataType::Int),
        ])))
        .project(vec![(col("tid"), "tid"), (col("cnt").div(lit(2i64)), "score")])
        .top_k(lit(5i64), ordering);
        let result = execute(&empty, &catalog).unwrap();
        assert_eq!(result.num_rows(), 0);
        assert_eq!(result.schema().field(0).dtype, DataType::Int);
        assert_eq!(result.schema().field(1).dtype, DataType::Float);
    }

    #[test]
    fn typed_top_k_keys_match_generic_ordering() {
        // Float keys spanning the tricky encodings (negatives, -0.0 vs 0.0,
        // NaN) must order exactly like the generic comparator; a NULL key
        // forces the generic fallback and must not change results.
        let scores = [1.5, -2.25, f64::NAN, 0.0, -0.0, 7.0, -2.25, 3.5];
        let mut builder =
            TableBuilder::new().column("score", DataType::Float).column("tid", DataType::Int);
        for (i, &s) in scores.iter().enumerate() {
            builder = builder.row(vec![s.into(), (i as i64).into()]);
        }
        let t = builder.build().unwrap();
        let ordering = vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)];
        for k in [0usize, 1, 3, 8, 20] {
            let top = Plan::values(t.clone()).top_k(lit(k as i64), ordering.clone());
            let reference = Plan::values(t.clone()).sort_by_many(ordering.clone()).limit(k);
            let fast = execute(&top, &Catalog::new()).unwrap();
            let expected = execute(&reference, &Catalog::new()).unwrap();
            assert_eq!(fast.rows(), expected.rows(), "k={k}");
        }
        // NULL in the key column: falls back to the generic path, still
        // matching sort + limit.
        let mut with_null = t.clone();
        with_null.push_row(vec![Value::Null, 99.into()]).unwrap();
        let top = Plan::values(with_null.clone()).top_k(lit(4i64), ordering.clone());
        let reference = Plan::values(with_null).sort_by_many(ordering).limit(4);
        assert_eq!(
            execute(&top, &Catalog::new()).unwrap().rows(),
            execute(&reference, &Catalog::new()).unwrap().rows()
        );
    }

    #[test]
    fn top_k_bounded_matches_aggregate_top_k_pipeline() {
        // Weighted token table with skewed lists: token 0 is frequent/light,
        // token 9 rare/heavy — the shape max-score pruning exploits.
        let mut weights = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Int)
            .column("weight", DataType::Float);
        for tid in 0..50i64 {
            weights = weights.row(vec![tid.into(), 0.into(), 0.01.into()]);
            if tid % 3 == 0 {
                weights = weights.row(vec![tid.into(), 1.into(), (0.1 + tid as f64 * 1e-3).into()]);
            }
            if tid % 17 == 0 {
                weights = weights.row(vec![tid.into(), 9.into(), 2.5.into()]);
            }
        }
        let table = weights.build().unwrap();
        let mut c = Catalog::new();
        c.register_indexed("w", table, &["token"]).unwrap();
        c.register_posting("w", "token", "tid", Some("weight")).unwrap();
        let probe = TableBuilder::new()
            .column("token", DataType::Int)
            .column("factor", DataType::Float)
            .row(vec![0.into(), 1.0.into()])
            .row(vec![1.into(), 0.5.into()])
            .row(vec![9.into(), 2.0.into()])
            .row(vec![42.into(), 1.0.into()]) // unknown token: no list
            .build()
            .unwrap();
        let reference = Plan::index_join("w", &["token"], Plan::param("q"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::Sum(col("weight").mul(col("factor"))), "score")])
            .top_k(
                param("k"),
                vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)],
            );
        let bounded =
            Plan::top_k_bounded("w", Plan::param("q"), "token", Some("factor"), param("k"));
        for k in [0usize, 1, 5, 50, 200] {
            let bindings =
                Bindings::new().with_table("q", probe.clone()).with_scalar("k", k as i64);
            let expected = execute_with(&reference, &c, &bindings).unwrap();
            let fast = execute_with(&bounded, &c, &bindings).unwrap();
            let slow = execute_naive(&bounded, &c, &bindings).unwrap();
            assert_eq!(fast.schema().names(), vec!["tid", "score"], "k={k}");
            assert_eq!(fast.num_rows(), expected.num_rows(), "k={k}");
            for row in 0..expected.num_rows() {
                assert_eq!(
                    fast.value(row, "tid").unwrap(),
                    expected.value(row, "tid").unwrap(),
                    "k={k} row={row}"
                );
                let fs = fast.value(row, "score").unwrap().as_f64().unwrap();
                let es = expected.value(row, "score").unwrap().as_f64().unwrap();
                assert_eq!(fs.to_bits(), es.to_bits(), "k={k} row={row}");
            }
            assert_eq!(slow.rows(), fast.rows(), "k={k} (naive)");
        }
        // Factors may not be negative, and the posting index is required.
        let neg_probe = TableBuilder::new()
            .column("token", DataType::Int)
            .column("factor", DataType::Float)
            .row(vec![0.into(), (-1.0).into()])
            .build()
            .unwrap();
        let bindings = Bindings::new().with_table("q", neg_probe).with_scalar("k", 3i64);
        assert!(matches!(execute_with(&bounded, &c, &bindings), Err(RelqError::InvalidPlan(_))));
        let mut no_posting = Catalog::new();
        no_posting.register_indexed("w", c.get("w").unwrap().clone(), &["token"]).unwrap();
        let bindings = Bindings::new().with_table("q", probe).with_scalar("k", 3i64);
        assert!(matches!(
            execute_with(&bounded, &no_posting, &bindings),
            Err(RelqError::MissingPosting(_))
        ));
    }

    #[test]
    fn threshold_bounded_matches_filtered_aggregate_pipeline() {
        // Same skewed-weight corpus as the top-k test: token 0 frequent and
        // light, token 9 rare and heavy.
        let mut weights = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Int)
            .column("weight", DataType::Float);
        for tid in 0..50i64 {
            weights = weights.row(vec![tid.into(), 0.into(), 0.01.into()]);
            if tid % 3 == 0 {
                weights = weights.row(vec![tid.into(), 1.into(), (0.1 + tid as f64 * 1e-3).into()]);
            }
            if tid % 17 == 0 {
                weights = weights.row(vec![tid.into(), 9.into(), 2.5.into()]);
            }
        }
        let table = weights.build().unwrap();
        let mut c = Catalog::new();
        c.register_indexed("w", table, &["token"]).unwrap();
        c.register_posting("w", "token", "tid", Some("weight")).unwrap();
        let probe = TableBuilder::new()
            .column("token", DataType::Int)
            .column("factor", DataType::Float)
            .row(vec![0.into(), 1.0.into()])
            .row(vec![1.into(), 0.5.into()])
            .row(vec![9.into(), 2.0.into()])
            .row(vec![42.into(), 1.0.into()]) // unknown token: no list
            .build()
            .unwrap();
        // The exhaustive reference: filter the aggregated scores at τ, then
        // bring them into the bounded operator's canonical ranking order.
        let reference = Plan::index_join("w", &["token"], Plan::param("q"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::Sum(col("weight").mul(col("factor"))), "score")])
            .filter(col("score").gt_eq(param("tau")))
            .sort_by_many(vec![("score", SortOrder::Descending), ("tid", SortOrder::Ascending)]);
        let bounded =
            Plan::threshold_bounded("w", Plan::param("q"), "token", Some("factor"), param("tau"));
        for tau in [f64::NEG_INFINITY, -1.0, 0.0, 0.01, 0.05, 0.1, 1.0, 5.0, 5.01, 100.0, f64::NAN]
        {
            let bindings = Bindings::new().with_table("q", probe.clone()).with_scalar("tau", tau);
            let expected = execute_with(&reference, &c, &bindings).unwrap();
            let fast = execute_with(&bounded, &c, &bindings).unwrap();
            let slow = execute_naive(&bounded, &c, &bindings).unwrap();
            assert_eq!(fast.schema().names(), vec!["tid", "score"], "tau={tau}");
            assert_eq!(fast.num_rows(), expected.num_rows(), "tau={tau}");
            for row in 0..expected.num_rows() {
                assert_eq!(
                    fast.value(row, "tid").unwrap(),
                    expected.value(row, "tid").unwrap(),
                    "tau={tau} row={row}"
                );
                let fs = fast.value(row, "score").unwrap().as_f64().unwrap();
                let es = expected.value(row, "score").unwrap().as_f64().unwrap();
                assert_eq!(fs.to_bits(), es.to_bits(), "tau={tau} row={row}");
            }
            assert_eq!(slow.rows(), fast.rows(), "tau={tau} (naive)");
        }
        // Exact-boundary τ: pick one aggregated score and select at it — the
        // `>=` must admit exactly that tid.
        let all = execute_with(
            &bounded,
            &c,
            &Bindings::new().with_table("q", probe.clone()).with_scalar("tau", f64::NEG_INFINITY),
        )
        .unwrap();
        let boundary = all.value(all.num_rows() / 2, "score").unwrap().as_f64().unwrap();
        let bindings = Bindings::new().with_table("q", probe.clone()).with_scalar("tau", boundary);
        let at = execute_with(&bounded, &c, &bindings).unwrap();
        assert!(at.rows().iter().any(|r| r[1].as_f64().unwrap().to_bits() == boundary.to_bits()));
        assert_eq!(at.rows(), execute_naive(&bounded, &c, &bindings).unwrap().rows());
        // Negative factors are rejected by the traversal; the posting index
        // is required.
        let neg_probe = TableBuilder::new()
            .column("token", DataType::Int)
            .column("factor", DataType::Float)
            .row(vec![0.into(), (-1.0).into()])
            .build()
            .unwrap();
        let bindings = Bindings::new().with_table("q", neg_probe).with_scalar("tau", 0.5);
        assert!(matches!(execute_with(&bounded, &c, &bindings), Err(RelqError::InvalidPlan(_))));
        let mut no_posting = Catalog::new();
        no_posting.register_indexed("w", c.get("w").unwrap().clone(), &["token"]).unwrap();
        let bindings = Bindings::new().with_table("q", probe).with_scalar("tau", 0.5);
        assert!(matches!(
            execute_with(&bounded, &no_posting, &bindings),
            Err(RelqError::MissingPosting(_))
        ));
    }

    #[test]
    fn fused_filter_over_projection_matches_unfused_pipeline() {
        // Regression: the indexed mode must apply a filter above a projection
        // (the threshold-plan shape) row-by-row, byte-identical to the naive
        // materialize-then-filter pipeline.
        let catalog = catalog();
        let plan = Plan::scan("base_tokens")
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "cnt")])
            .project(vec![(col("tid"), "tid"), (col("cnt").mul(lit(2i64)), "score")])
            .filter(col("score").gt_eq(param("tau")));
        for tau in [i64::MIN, 0, 2, 4, 5, 100] {
            let bindings = Bindings::new().with_scalar("tau", tau);
            let fused = execute_with(&plan, &catalog, &bindings).unwrap();
            let unfused = execute_naive(&plan, &catalog, &bindings).unwrap();
            assert_eq!(fused.schema(), unfused.schema(), "tau={tau}");
            assert_eq!(fused.rows(), unfused.rows(), "tau={tau}");
        }
        // Empty input keeps the projection's derived schema in both modes.
        let empty = Plan::values(Table::empty(Schema::from_pairs(&[
            ("tid", DataType::Int),
            ("cnt", DataType::Int),
        ])))
        .project(vec![(col("tid"), "tid"), (col("cnt").div(lit(2i64)), "score")])
        .filter(col("score").gt_eq(lit(0.0)));
        let result = execute(&empty, &catalog).unwrap();
        assert_eq!(result.num_rows(), 0);
        assert_eq!(result.schema().field(0).dtype, DataType::Int);
        assert_eq!(result.schema().field(1).dtype, DataType::Float);
    }

    #[test]
    fn fused_filter_over_aggregation_matches_unfused_pipeline() {
        // Regression: a filter directly above an aggregation (the WM/Cosine
        // threshold-plan shape) is applied as output rows are assembled —
        // through the fused Aggregate(IndexJoin) pipeline and the generic
        // one — byte-identical to the naive materialize-then-filter path.
        let catalog = catalog();
        let indexed =
            Plan::index_join("base_tokens", &["token"], Plan::scan("query_tokens"), &["token"])
                .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
                .filter(col("score").gt_eq(param("tau")));
        let generic = Plan::scan("base_tokens")
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .filter(col("score").gt_eq(param("tau")));
        for plan in [&indexed, &generic] {
            for tau in [i64::MIN, 1, 2, 3, 9] {
                let bindings = Bindings::new().with_scalar("tau", tau);
                let fused = execute_with(plan, &catalog, &bindings).unwrap();
                let unfused = execute_naive(plan, &catalog, &bindings).unwrap();
                assert_eq!(fused.rows(), unfused.rows(), "tau={tau}");
            }
        }
        // A filtered *global* aggregate over an empty stream still assembles
        // (and then filters) its single empty-aggregate row.
        let empty = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let plan = Plan::values(empty)
            .aggregate(&[], vec![(AggFunc::CountStar, "n")])
            .filter(col("n").gt_eq(lit(1i64)));
        assert_eq!(execute(&plan, &Catalog::new()).unwrap().num_rows(), 0);
        let plan = match plan {
            Plan::Filter { input, .. } => input.filter(col("n").gt_eq(lit(0i64))),
            _ => unreachable!(),
        };
        assert_eq!(execute(&plan, &Catalog::new()).unwrap().num_rows(), 1);
    }

    #[test]
    fn top_k_breaks_full_ties_by_input_order() {
        // Duplicate keys: the kept prefix must equal stable sort + truncate.
        let t = TableBuilder::new()
            .column("g", DataType::Int)
            .column("tag", DataType::Str)
            .row(vec![1.into(), "a".into()])
            .row(vec![2.into(), "b".into()])
            .row(vec![1.into(), "c".into()])
            .row(vec![2.into(), "d".into()])
            .row(vec![1.into(), "e".into()])
            .build()
            .unwrap();
        let top = Plan::values(t.clone()).top_k(lit(2i64), vec![("g", SortOrder::Ascending)]);
        let reference = Plan::values(t).sort_by("g", SortOrder::Ascending).limit(2);
        let a = execute(&top, &Catalog::new()).unwrap();
        let b = execute(&reference, &Catalog::new()).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.value(0, "tag").unwrap(), &Value::Str("a".into()));
        assert_eq!(a.value(1, "tag").unwrap(), &Value::Str("c".into()));
    }

    #[test]
    fn distinct_union_limit() {
        let plan = Plan::scan("query_tokens").union_all(Plan::scan("query_tokens")).distinct();
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 2);
        let plan = Plan::scan("base_tokens").limit(4);
        assert_eq!(execute(&plan, &catalog()).unwrap().num_rows(), 4);
    }

    #[test]
    fn union_incompatible_schemas_fail() {
        let plan = Plan::scan("base_tokens").union_all(Plan::scan("query_tokens"));
        assert!(execute(&plan, &catalog()).is_err());
    }

    #[test]
    fn sort_multi_key() {
        let plan = Plan::scan("base_tokens")
            .sort_by_many(vec![("tid", SortOrder::Descending), ("token", SortOrder::Ascending)]);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(3));
        assert_eq!(result.value(1, "tid").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "token").unwrap(), &Value::Str("ab".into()));
    }

    #[test]
    fn null_join_keys_never_match() {
        let left = TableBuilder::new()
            .column("k", DataType::Str)
            .row(vec![Value::Null])
            .row(vec!["a".into()])
            .build()
            .unwrap();
        let right = TableBuilder::new()
            .column("k", DataType::Str)
            .row(vec![Value::Null])
            .row(vec!["a".into()])
            .build()
            .unwrap();
        let plan = Plan::values(left.clone()).join_on(Plan::values(right), &["k"], &["k"]);
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 1);
        // Same through the index path: NULL probe keys and NULL index keys
        // are both skipped.
        let mut c = Catalog::new();
        c.register_indexed("l", left, &["k"]).unwrap();
        let probe = TableBuilder::new()
            .column("k", DataType::Str)
            .row(vec![Value::Null])
            .row(vec!["a".into()])
            .build()
            .unwrap();
        let plan = Plan::index_join("l", &["k"], Plan::values(probe), &["k"]);
        assert_eq!(execute(&plan, &c).unwrap().num_rows(), 1);
    }

    #[test]
    fn hash_join_emission_order_is_independent_of_input_sizes() {
        // The build side is chosen by cardinality, but emission must stay
        // left-major either way: the same logical join over differently
        // sized inputs (e.g. one corpus shard vs the monolith) has to feed
        // downstream float aggregates in the same row order.
        let rows_of = |table: &Table| {
            (0..table.num_rows())
                .map(|i| {
                    (table.value(i, "a").unwrap().clone(), table.value(i, "b").unwrap().clone())
                })
                .collect::<Vec<_>>()
        };
        let small = TableBuilder::new()
            .column("k", DataType::Int)
            .column("a", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .build()
            .unwrap();
        let big = TableBuilder::new()
            .column("k", DataType::Int)
            .column("b", DataType::Int)
            .row(vec![2.into(), 200.into()])
            .row(vec![1.into(), 100.into()])
            .row(vec![1.into(), 101.into()])
            .row(vec![2.into(), 201.into()])
            .build()
            .unwrap();
        // Left smaller (build left): still left-major with right matches in
        // right table order.
        let plan = Plan::values(small.clone()).join_on_with_suffix(
            Plan::values(big.clone()),
            &["k"],
            &["k"],
            "_r",
        );
        let left_small = execute(&plan, &Catalog::new()).unwrap();
        let expected = vec![
            (Value::Int(10), Value::Int(100)),
            (Value::Int(10), Value::Int(101)),
            (Value::Int(20), Value::Int(200)),
            (Value::Int(20), Value::Int(201)),
        ];
        assert_eq!(rows_of(&left_small), expected);
        // Right smaller (build right): the natural probe-left path — also
        // left-major, with the big table now on the left.
        let plan = Plan::values(big)
            .join_on_with_suffix(Plan::values(small), &["k"], &["k"], "_r")
            .project(vec![(col("a"), "a"), (col("b"), "b")]);
        let right_small = execute(&plan, &Catalog::new()).unwrap();
        let expected = vec![
            (Value::Int(20), Value::Int(200)),
            (Value::Int(10), Value::Int(100)),
            (Value::Int(10), Value::Int(101)),
            (Value::Int(20), Value::Int(201)),
        ];
        assert_eq!(rows_of(&right_small), expected);
    }

    #[test]
    fn missing_table_is_an_error() {
        let plan = Plan::scan("nope");
        assert!(matches!(
            execute(&plan, &Catalog::new()).map(|_| ()),
            Err(RelqError::UnknownTable(_))
        ));
    }

    #[test]
    fn join_key_arity_mismatch_is_an_error() {
        let plan = Plan::scan("base_tokens").join_on(Plan::scan("query_tokens"), &["token"], &[]);
        assert!(execute(&plan, &catalog()).is_err());
        let plan = Plan::index_join("base_tokens", &["token"], Plan::scan("query_tokens"), &[]);
        assert!(execute(&plan, &catalog()).is_err());
    }

    /// Weighted corpus for the routing probes: three tokens, skewed lists.
    ///   ab → {1: 0.1, 2: 0.7}    cd → {1: 0.3, 3: 0.9}    zz → {4: 0.5}
    fn probe_catalog(with_posting: bool) -> Catalog {
        let weights = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .column("weight", DataType::Float)
            .row(vec![1.into(), "ab".into(), 0.1.into()])
            .row(vec![2.into(), "ab".into(), 0.7.into()])
            .row(vec![1.into(), "cd".into(), 0.3.into()])
            .row(vec![3.into(), "cd".into(), 0.9.into()])
            .row(vec![4.into(), "zz".into(), 0.5.into()])
            .build()
            .unwrap();
        let mut c = Catalog::new();
        c.register_indexed("w", weights, &["token"]).unwrap();
        if with_posting {
            c.register_posting("w", "token", "tid", Some("weight")).unwrap();
        }
        c
    }

    fn probe_table(rows: &[(Option<&str>, Option<f64>)]) -> Table {
        let mut b =
            TableBuilder::new().column("token", DataType::Str).column("factor", DataType::Float);
        for (token, factor) in rows {
            b = b.row(vec![
                token.map_or(Value::Null, Value::from),
                factor.map_or(Value::Null, Value::from),
            ]);
        }
        b.build().unwrap()
    }

    #[test]
    fn probe_stats_reads_posting_statistics_exactly() {
        let catalog = probe_catalog(true);
        let probe = probe_table(&[(Some("ab"), Some(2.0)), (Some("cd"), Some(1.0))]);
        let stats = probe_stats(&catalog, "w", &probe, "token", Some("factor")).unwrap();
        assert_eq!(stats.lists, 2);
        assert_eq!(stats.postings, 4);
        // 2.0 * max(ab) + 1.0 * max(cd) = 2.0 * 0.7 + 0.9
        assert!((stats.bound_sum - (2.0 * 0.7 + 0.9)).abs() < 1e-12);
    }

    #[test]
    fn probe_stats_skips_null_tokens_and_factors_and_misses() {
        let catalog = probe_catalog(true);
        let probe = probe_table(&[
            (None, Some(1.0)),            // NULL token: skipped
            (Some("ab"), None),           // NULL factor: skipped
            (Some("missing"), Some(1.0)), // no list: not counted
            (Some("zz"), Some(3.0)),
        ]);
        let stats = probe_stats(&catalog, "w", &probe, "token", Some("factor")).unwrap();
        assert_eq!(stats.lists, 1);
        assert_eq!(stats.postings, 1);
        assert!((stats.bound_sum - 3.0 * 0.5).abs() < 1e-12);
        // Without a factor column every list counts with unit weight.
        let unit = probe_table(&[(Some("ab"), None), (Some("cd"), None)]);
        let stats = probe_stats(&catalog, "w", &unit, "token", None).unwrap();
        assert_eq!((stats.lists, stats.postings), (2, 4));
        assert!((stats.bound_sum - (0.7 + 0.9)).abs() < 1e-12);
    }

    #[test]
    fn probe_stats_without_posting_uses_equality_index_and_nan_bound() {
        let catalog = probe_catalog(false);
        let probe = probe_table(&[(Some("ab"), Some(1.0)), (Some("cd"), Some(1.0))]);
        let stats = probe_stats(&catalog, "w", &probe, "token", Some("factor")).unwrap();
        assert_eq!(stats.lists, 2);
        assert_eq!(stats.postings, 4);
        assert!(stats.bound_sum.is_nan());
        // With neither index the probe is a typed error, not a guess.
        let mut bare = Catalog::new();
        bare.register("w", probe_catalog(false).get_shared("w").map(|t| (*t).clone()).unwrap());
        let err = probe_stats(&bare, "w", &probe, "token", Some("factor"));
        assert!(matches!(err, Err(RelqError::MissingIndex { .. })));
    }

    #[test]
    fn sample_probe_scores_the_tid_prefix_exactly() {
        let catalog = probe_catalog(true);
        let probe = probe_table(&[(Some("ab"), Some(1.0)), (Some("cd"), Some(1.0))]);
        // Candidate scores: tid 1 → 0.4, tid 2 → 0.7, tid 3 → 0.9.
        let all = sample_probe(&catalog, "w", &probe, "token", Some("factor"), 0.5, 16).unwrap();
        assert_eq!(all, SampleProbe { sampled: 3, passing: 2, exhausted: false });
        // The limit cuts the enumeration short and reports it.
        let cut = sample_probe(&catalog, "w", &probe, "token", Some("factor"), 0.5, 2).unwrap();
        assert_eq!(cut, SampleProbe { sampled: 2, passing: 1, exhausted: true });
        // passing is monotone non-increasing in the bar over the full sweep.
        let mut last = u64::MAX;
        for bar in [-1.0, 0.0, 0.4, 0.5, 0.7, 0.9, 1.0, f64::INFINITY] {
            let got =
                sample_probe(&catalog, "w", &probe, "token", Some("factor"), bar, 16).unwrap();
            assert!(got.passing <= last, "passing jumped at bar {bar}");
            last = got.passing;
        }
        // An empty probe (or one with only misses) samples nothing.
        let none = probe_table(&[(Some("missing"), Some(1.0))]);
        let got = sample_probe(&catalog, "w", &none, "token", Some("factor"), 0.0, 16).unwrap();
        assert_eq!(got, SampleProbe { sampled: 0, passing: 0, exhausted: false });
    }

    #[test]
    fn sample_probe_requires_a_posting_index() {
        let catalog = probe_catalog(false);
        let probe = probe_table(&[(Some("ab"), Some(1.0))]);
        let err = sample_probe(&catalog, "w", &probe, "token", Some("factor"), 0.5, 16);
        assert!(matches!(err, Err(RelqError::MissingPosting(_))));
    }
}
