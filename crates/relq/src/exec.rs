//! Plan execution: evaluates a [`Plan`] against a [`Catalog`] and produces a
//! materialized [`Table`].
//!
//! The execution strategy is intentionally simple but realistic: hash
//! equi-joins, hash aggregation, and row-at-a-time expression evaluation —
//! the same operations a relational engine would use for the paper's SQL.

use crate::agg::{Accumulator, AggFunc};
use crate::catalog::Catalog;
use crate::error::{RelqError, Result};
use crate::plan::{Plan, ProjectItem, SortOrder};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Row, Value};
use std::collections::HashMap;

/// Execute a plan against the catalog, returning the result table.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Table> {
    match plan {
        Plan::Scan { table } => Ok(catalog.get(table)?.clone()),
        Plan::Values { table } => Ok(table.clone()),
        Plan::Filter { input, predicate } => {
            let input = execute(input, catalog)?;
            let schema = input.schema().clone();
            let mut rows = Vec::new();
            for row in input.rows() {
                if predicate.evaluate(row, &schema)?.as_bool()? {
                    rows.push(row.clone());
                }
            }
            Ok(Table::from_parts_unchecked(schema, rows))
        }
        Plan::Project { input, items } => {
            let input = execute(input, catalog)?;
            project(&input, items)
        }
        Plan::HashJoin { left, right, left_keys, right_keys, suffix } => {
            let left = execute(left, catalog)?;
            let right = execute(right, catalog)?;
            hash_join(&left, &right, left_keys, right_keys, suffix)
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let input = execute(input, catalog)?;
            aggregate(&input, group_by, aggregates)
        }
        Plan::Sort { input, keys } => {
            let input = execute(input, catalog)?;
            sort(input, keys)
        }
        Plan::Limit { input, count } => {
            let input = execute(input, catalog)?;
            let schema = input.schema().clone();
            let rows: Vec<Row> = input.into_rows().into_iter().take(*count).collect();
            Ok(Table::from_parts_unchecked(schema, rows))
        }
        Plan::Distinct { input } => {
            let input = execute(input, catalog)?;
            distinct(input)
        }
        Plan::UnionAll { left, right } => {
            let left = execute(left, catalog)?;
            let right = execute(right, catalog)?;
            left.schema().check_union_compatible(right.schema())?;
            let schema = left.schema().clone();
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            Ok(Table::from_parts_unchecked(schema, rows))
        }
    }
}

fn project(input: &Table, items: &[ProjectItem]) -> Result<Table> {
    let in_schema = input.schema();
    // Infer output types from the first row; default to Float when the table
    // is empty or the first value is NULL (weights and scores dominate).
    let mut fields = Vec::with_capacity(items.len());
    for item in items {
        let dtype = input
            .rows()
            .first()
            .and_then(|row| item.expr.evaluate(row, in_schema).ok())
            .and_then(|v| v.data_type())
            .unwrap_or(DataType::Float);
        fields.push(Field::new(item.alias.clone(), dtype));
    }
    let out_schema = Schema::new(fields);
    let mut rows = Vec::with_capacity(input.num_rows());
    for row in input.rows() {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(item.expr.evaluate(row, in_schema)?);
        }
        rows.push(out);
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[String],
    right_keys: &[String],
    suffix: &str,
) -> Result<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(RelqError::InvalidPlan(format!(
            "join key lists must be equal length and non-empty: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let left_idx: Vec<usize> = left_keys
        .iter()
        .map(|k| left.schema().index_of(k))
        .collect::<Result<_>>()?;
    let right_idx: Vec<usize> = right_keys
        .iter()
        .map(|k| right.schema().index_of(k))
        .collect::<Result<_>>()?;

    // Build on the smaller input.
    let build_left = left.num_rows() <= right.num_rows();
    let (build, build_idx, probe, probe_idx) = if build_left {
        (left, &left_idx, right, &right_idx)
    } else {
        (right, &right_idx, left, &left_idx)
    };

    let mut hash_table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (row_no, row) in build.rows().iter().enumerate() {
        let key: Vec<Value> = build_idx.iter().map(|&i| row[i].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue; // SQL equality never matches NULL keys.
        }
        hash_table.entry(key).or_default().push(row_no);
    }

    let out_schema = left.schema().join(right.schema(), suffix);
    let mut rows = Vec::new();
    for probe_row in probe.rows() {
        let key: Vec<Value> = probe_idx.iter().map(|&i| probe_row[i].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = hash_table.get(&key) {
            for &build_no in matches {
                let build_row = &build.rows()[build_no];
                let (lrow, rrow) =
                    if build_left { (build_row, probe_row) } else { (probe_row, build_row) };
                let mut out = Vec::with_capacity(out_schema.len());
                out.extend(lrow.iter().cloned());
                out.extend(rrow.iter().cloned());
                rows.push(out);
            }
        }
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

fn aggregate(input: &Table, group_by: &[String], aggregates: &[crate::agg::Aggregate]) -> Result<Table> {
    let in_schema = input.schema();
    let group_idx: Vec<usize> =
        group_by.iter().map(|k| in_schema.index_of(k)).collect::<Result<_>>()?;

    // Output schema: group-by columns first (with their input types), then
    // one column per aggregate.
    let mut fields = Vec::new();
    for &i in &group_idx {
        fields.push(in_schema.field(i).clone());
    }
    for agg in aggregates {
        fields.push(Field::new(agg.alias.clone(), agg.output_type()));
    }
    let out_schema = Schema::new(fields);

    // Group rows preserving first-seen order so results are deterministic.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accumulators: Vec<Vec<Accumulator>> = Vec::new();

    for row in input.rows() {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let slot = match groups.get(&key) {
            Some(&s) => s,
            None => {
                let s = order.len();
                groups.insert(key.clone(), s);
                order.push(key);
                accumulators
                    .push(aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect());
                s
            }
        };
        for (acc, agg) in accumulators[slot].iter_mut().zip(aggregates) {
            let value = match &agg.func {
                AggFunc::CountStar => None,
                AggFunc::Count(e)
                | AggFunc::CountDistinct(e)
                | AggFunc::Sum(e)
                | AggFunc::Min(e)
                | AggFunc::Max(e)
                | AggFunc::Avg(e) => Some(e.evaluate(row, in_schema)?),
            };
            acc.update(value)?;
        }
    }

    // Global aggregation over an empty input still produces a single row of
    // "empty" aggregates, matching SQL semantics.
    if order.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        accumulators.push(aggregates.iter().map(|a| Accumulator::for_func(&a.func)).collect());
    }

    let mut rows = Vec::with_capacity(order.len());
    for (key, accs) in order.into_iter().zip(accumulators) {
        let mut row = key;
        for acc in accs {
            row.push(acc.finish());
        }
        rows.push(row);
    }
    Ok(Table::from_parts_unchecked(out_schema, rows))
}

fn sort(input: Table, keys: &[(String, SortOrder)]) -> Result<Table> {
    let schema = input.schema().clone();
    let key_idx: Vec<(usize, SortOrder)> = keys
        .iter()
        .map(|(name, order)| Ok((schema.index_of(name)?, *order)))
        .collect::<Result<_>>()?;
    let mut rows = input.into_rows();
    rows.sort_by(|a, b| {
        for &(idx, order) in &key_idx {
            let ord = a[idx].total_cmp(&b[idx]);
            let ord = match order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Table::from_parts_unchecked(schema, rows))
}

fn distinct(input: Table) -> Result<Table> {
    let schema = input.schema().clone();
    let mut seen: std::collections::HashSet<Vec<Value>> = Default::default();
    let mut rows = Vec::new();
    for row in input.into_rows() {
        if seen.insert(row.clone()) {
            rows.push(row);
        }
    }
    Ok(Table::from_parts_unchecked(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::table::TableBuilder;

    fn catalog() -> Catalog {
        let base = TableBuilder::new()
            .column("tid", DataType::Int)
            .column("token", DataType::Str)
            .row(vec![1.into(), "ab".into()])
            .row(vec![1.into(), "bc".into()])
            .row(vec![1.into(), "cd".into()])
            .row(vec![2.into(), "ab".into()])
            .row(vec![2.into(), "xy".into()])
            .row(vec![3.into(), "zz".into()])
            .build()
            .unwrap();
        let query = TableBuilder::new()
            .column("token", DataType::Str)
            .row(vec!["ab".into()])
            .row(vec!["cd".into()])
            .build()
            .unwrap();
        let mut c = Catalog::new();
        c.register("base_tokens", base);
        c.register("query_tokens", query);
        c
    }

    #[test]
    fn intersect_size_plan_matches_hand_count() {
        // This is exactly Figure 4.1 of the paper: join on token, COUNT(*)
        // grouped by tid.
        let plan = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")])
            .sort_by("score", SortOrder::Descending);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(1));
        assert_eq!(result.value(0, "score").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "tid").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "score").unwrap(), &Value::Int(1));
    }

    #[test]
    fn filter_and_project() {
        let plan = Plan::scan("base_tokens")
            .filter(col("tid").eq(lit(1i64)))
            .project(vec![(col("token"), "t"), (col("tid").mul(lit(10i64)), "tid10")]);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 3);
        assert_eq!(result.schema().names(), vec!["t", "tid10"]);
        assert_eq!(result.value(0, "tid10").unwrap(), &Value::Int(10));
    }

    #[test]
    fn join_renames_colliding_columns() {
        let plan =
            Plan::scan("base_tokens").join_on(Plan::scan("base_tokens"), &["token"], &["token"]);
        let result = execute(&plan, &catalog()).unwrap();
        assert!(result.schema().contains("token"));
        assert!(result.schema().contains("token_r"));
        assert!(result.schema().contains("tid_r"));
        // Self-join on token: 'ab' appears in tids {1,2} -> 4 pairs, others 1 each.
        assert_eq!(result.num_rows(), 4 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn aggregate_with_sum_min_max_avg() {
        let t = TableBuilder::new()
            .column("g", DataType::Str)
            .column("v", DataType::Float)
            .row(vec!["a".into(), 1.0.into()])
            .row(vec!["a".into(), 3.0.into()])
            .row(vec!["b".into(), 10.0.into()])
            .build()
            .unwrap();
        let plan = Plan::values(t).aggregate(
            &["g"],
            vec![
                (AggFunc::Sum(col("v")), "s"),
                (AggFunc::Avg(col("v")), "a"),
                (AggFunc::Min(col("v")), "lo"),
                (AggFunc::Max(col("v")), "hi"),
                (AggFunc::CountStar, "n"),
            ],
        );
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, "s").unwrap(), &Value::Float(4.0));
        assert_eq!(result.value(0, "a").unwrap(), &Value::Float(2.0));
        assert_eq!(result.value(0, "lo").unwrap(), &Value::Float(1.0));
        assert_eq!(result.value(0, "hi").unwrap(), &Value::Float(3.0));
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = Plan::scan("base_tokens").aggregate(
            &[],
            vec![(AggFunc::CountStar, "n"), (AggFunc::CountDistinct(col("tid")), "d")],
        );
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(6));
        assert_eq!(result.value(0, "d").unwrap(), &Value::Int(3));
    }

    #[test]
    fn global_aggregate_on_empty_input_produces_one_row() {
        let empty = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let plan = Plan::values(empty).aggregate(&[], vec![(AggFunc::CountStar, "n")]);
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.value(0, "n").unwrap(), &Value::Int(0));
    }

    #[test]
    fn distinct_union_limit() {
        let plan = Plan::scan("query_tokens")
            .union_all(Plan::scan("query_tokens"))
            .distinct();
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.num_rows(), 2);
        let plan = Plan::scan("base_tokens").limit(4);
        assert_eq!(execute(&plan, &catalog()).unwrap().num_rows(), 4);
    }

    #[test]
    fn union_incompatible_schemas_fail() {
        let plan = Plan::scan("base_tokens").union_all(Plan::scan("query_tokens"));
        assert!(execute(&plan, &catalog()).is_err());
    }

    #[test]
    fn sort_multi_key() {
        let plan = Plan::scan("base_tokens").sort_by_many(vec![
            ("tid", SortOrder::Descending),
            ("token", SortOrder::Ascending),
        ]);
        let result = execute(&plan, &catalog()).unwrap();
        assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(3));
        assert_eq!(result.value(1, "tid").unwrap(), &Value::Int(2));
        assert_eq!(result.value(1, "token").unwrap(), &Value::Str("ab".into()));
    }

    #[test]
    fn null_join_keys_never_match() {
        let left = TableBuilder::new()
            .column("k", DataType::Str)
            .row(vec![Value::Null])
            .row(vec!["a".into()])
            .build()
            .unwrap();
        let right = TableBuilder::new()
            .column("k", DataType::Str)
            .row(vec![Value::Null])
            .row(vec!["a".into()])
            .build()
            .unwrap();
        let plan = Plan::values(left).join_on(Plan::values(right), &["k"], &["k"]);
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(result.num_rows(), 1);
    }

    #[test]
    fn missing_table_is_an_error() {
        let plan = Plan::scan("nope");
        assert!(matches!(execute(&plan, &Catalog::new()), Err(RelqError::UnknownTable(_))));
    }

    #[test]
    fn join_key_arity_mismatch_is_an_error() {
        let plan = Plan::scan("base_tokens").join_on(Plan::scan("query_tokens"), &["token"], &[]);
        assert!(execute(&plan, &catalog()).is_err());
    }
}
