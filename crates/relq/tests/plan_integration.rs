//! Integration tests exercising relq plans the way dasp-core uses them:
//! token tables, weight tables, joins and grouped aggregation, plus property
//! tests comparing the engine against straightforward hand computations and
//! the index-join path against the plain hash-join path.

use proptest::prelude::*;
use relq::{
    col, execute, execute_naive, execute_with, AggFunc, Bindings, Catalog, DataType, Plan,
    SortOrder, Table, TableBuilder, Value,
};
use std::collections::{HashMap, HashSet};

fn token_table(rows: &[(i64, &str)]) -> Table {
    let mut bt = TableBuilder::new().column("tid", DataType::Int).column("token", DataType::Str);
    for (tid, tok) in rows {
        bt = bt.row(vec![(*tid).into(), (*tok).into()]);
    }
    bt.build().unwrap()
}

fn query_table(tokens: &[&str]) -> Table {
    let mut qt = TableBuilder::new().column("token", DataType::Str);
    for tok in tokens {
        qt = qt.row(vec![(*tok).into()]);
    }
    qt.build().unwrap()
}

fn build_token_catalog(base: &[(i64, &str)], query: &[&str]) -> Catalog {
    let mut c = Catalog::new();
    c.register_indexed("base_tokens", token_table(base), &["token"]).unwrap();
    c.register("query_tokens", query_table(query));
    c
}

#[test]
fn weighted_match_style_plan() {
    // BASE_WEIGHTS(tid, token, weight) joined with query tokens, SUM(weight).
    let weights = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("token", DataType::Str)
        .column("weight", DataType::Float)
        .row(vec![1.into(), "morgan".into(), 2.0.into()])
        .row(vec![1.into(), "stanley".into(), 3.0.into()])
        .row(vec![1.into(), "inc".into(), 0.1.into()])
        .row(vec![2.into(), "morgan".into(), 2.0.into()])
        .row(vec![2.into(), "labs".into(), 1.5.into()])
        .build()
        .unwrap();
    let query = query_table(&["morgan", "stanley"]);
    let mut catalog = Catalog::new();
    catalog.register_indexed("base_weights", weights, &["token"]).unwrap();

    // Same query shape through the index: probe only the matching rows.
    let plan = Plan::index_join("base_weights", &["token"], Plan::values(query), &["token"])
        .aggregate(&["tid"], vec![(AggFunc::Sum(col("weight")), "score")])
        .sort_by("score", SortOrder::Descending);
    let result = execute(&plan, &catalog).unwrap();
    assert_eq!(result.num_rows(), 2);
    assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(1));
    assert_eq!(result.value(0, "score").unwrap().as_f64().unwrap(), 5.0);
    assert_eq!(result.value(1, "score").unwrap().as_f64().unwrap(), 2.0);
}

#[test]
fn three_way_join_like_language_model_plan() {
    // LM needs a join of a per-(tid, token) table with query tokens and a
    // per-tid table (Figure 4.4). Verify a three-way join composes correctly.
    let pm = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("token", DataType::Str)
        .column("pm", DataType::Float)
        .row(vec![1.into(), "a".into(), 0.5.into()])
        .row(vec![1.into(), "b".into(), 0.25.into()])
        .row(vec![2.into(), "a".into(), 0.75.into()])
        .build()
        .unwrap();
    let sums = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("sumcompm", DataType::Float)
        .row(vec![1.into(), (-1.0).into()])
        .row(vec![2.into(), (-2.0).into()])
        .build()
        .unwrap();
    let query = query_table(&["a", "b"]);
    let mut catalog = Catalog::new();
    catalog.register_indexed("base_pm", pm, &["token"]).unwrap();
    catalog.register_indexed("base_sums", sums, &["tid"]).unwrap();

    let inner = Plan::index_join("base_pm", &["token"], Plan::values(query), &["token"])
        .aggregate(&["tid"], vec![(AggFunc::Sum(col("pm").ln()), "score")]);
    let plan = Plan::index_join("base_sums", &["tid"], inner, &["tid"])
        .project(vec![(col("tid"), "tid"), (col("score").add(col("sumcompm")).exp(), "final")])
        .sort_by("final", SortOrder::Descending);
    let result = execute(&plan, &catalog).unwrap();
    assert_eq!(result.num_rows(), 2);
    // tid 2: exp(ln(0.75) - 2) ; tid 1: exp(ln(0.5) + ln(0.25) - 1)
    let t2 = (0.75f64.ln() - 2.0).exp();
    let t1 = (0.5f64.ln() + 0.25f64.ln() - 1.0).exp();
    let top = result.value(0, "final").unwrap().as_f64().unwrap();
    let bottom = result.value(1, "final").unwrap().as_f64().unwrap();
    assert!((top - t2.max(t1)).abs() < 1e-12);
    assert!((bottom - t2.min(t1)).abs() < 1e-12);
}

/// Generate a random base token table, deduplicated like the paper's
/// distinct-token relations.
fn gen_base(g: &mut Gen) -> Vec<(i64, String)> {
    let raw = g.vec(0..120, |g| (g.int_in(0..20), g.string_of("abcd", 1..3)));
    let set: HashSet<(i64, String)> = raw.into_iter().collect();
    let mut v: Vec<(i64, String)> = set.into_iter().collect();
    v.sort();
    v
}

fn gen_query(g: &mut Gen) -> Vec<String> {
    let set: HashSet<String> = g.vec(0..10, |g| g.string_of("abcd", 1..3)).into_iter().collect();
    let mut v: Vec<String> = set.into_iter().collect();
    v.sort();
    v
}

/// The IntersectSize plan (join + COUNT(*) GROUP BY tid) must agree with a
/// direct hash-set computation for arbitrary token assignments.
#[test]
fn prop_intersect_plan_matches_hashmap() {
    check(64, |g| {
        let base = gen_base(g);
        let query = gen_query(g);
        let base_refs: Vec<(i64, &str)> = base.iter().map(|(t, s)| (*t, s.as_str())).collect();
        let query_refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let catalog = build_token_catalog(&base_refs, &query_refs);

        let plan = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]);
        let result = execute(&plan, &catalog).unwrap();

        let query_set: HashSet<&str> = query_refs.iter().copied().collect();
        let mut expected: HashMap<i64, i64> = HashMap::new();
        for (tid, tok) in &base {
            if query_set.contains(tok.as_str()) {
                *expected.entry(*tid).or_insert(0) += 1;
            }
        }
        let mut actual: HashMap<i64, i64> = HashMap::new();
        for row in result.rows() {
            actual.insert(row[0].as_i64().unwrap(), row[1].as_i64().unwrap());
        }
        assert_eq!(actual, expected);
    });
}

/// `Plan::IndexJoin` and the plain `HashJoin` must produce identical result
/// sets for random token tables, whichever side is larger, and the naive
/// (clone-per-scan, full-table hash build) execution mode must agree
/// byte-for-byte with the indexed mode.
#[test]
fn prop_index_join_equals_hash_join() {
    check(96, |g| {
        let base = gen_base(g);
        let query = gen_query(g);
        let base_refs: Vec<(i64, &str)> = base.iter().map(|(t, s)| (*t, s.as_str())).collect();
        let query_refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let catalog = build_token_catalog(&base_refs, &query_refs);

        let sort_keys = vec![
            ("tid", SortOrder::Ascending),
            ("token", SortOrder::Ascending),
            ("token_r", SortOrder::Ascending),
        ];
        let indexed =
            Plan::index_join("base_tokens", &["token"], Plan::scan("query_tokens"), &["token"])
                .sort_by_many(sort_keys.clone());
        let hashed = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .sort_by_many(sort_keys);
        let a = execute(&indexed, &catalog).unwrap();
        let b = execute(&hashed, &catalog).unwrap();
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.rows(), b.rows(), "index join and hash join disagree");

        // The naive mode (pre-refactor baseline) is byte-identical even
        // before sorting.
        let probe_plan = Plan::index_join("base_tokens", &["token"], Plan::param("q"), &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "cnt")]);
        let bindings = Bindings::new().with_table("q", query_table(&query_refs));
        let fast = execute_with(&probe_plan, &catalog, &bindings).unwrap();
        let slow = execute_naive(&probe_plan, &catalog, &bindings).unwrap();
        assert_eq!(fast.rows(), slow.rows());
    });
}

/// SUM/COUNT aggregation over random groups matches a fold.
#[test]
fn prop_group_sum_matches_fold() {
    check(64, |g| {
        let rows = g.vec(0..200, |g| (g.int_in(0..8), g.f64_in(-100.0..100.0)));
        let mut builder =
            TableBuilder::new().column("g", DataType::Int).column("v", DataType::Float);
        for (gk, v) in &rows {
            builder = builder.row(vec![(*gk).into(), (*v).into()]);
        }
        let table = builder.build().unwrap();
        let plan = Plan::values(table)
            .aggregate(&["g"], vec![(AggFunc::Sum(col("v")), "s"), (AggFunc::CountStar, "n")]);
        let result = execute(&plan, &Catalog::new()).unwrap();

        let mut expected_sum: HashMap<i64, f64> = HashMap::new();
        let mut expected_cnt: HashMap<i64, i64> = HashMap::new();
        for (gk, v) in &rows {
            *expected_sum.entry(*gk).or_insert(0.0) += v;
            *expected_cnt.entry(*gk).or_insert(0) += 1;
        }
        assert_eq!(result.num_rows(), expected_sum.len());
        for row in result.rows() {
            let gk = row[0].as_i64().unwrap();
            let s = row[1].as_f64().unwrap();
            let n = row[2].as_i64().unwrap();
            assert!((s - expected_sum[&gk]).abs() < 1e-6);
            assert_eq!(n, expected_cnt[&gk]);
        }
    });
}

/// Joining then counting never produces more rows than |left| * |right|
/// and respects key equality.
#[test]
fn prop_join_is_subset_of_cross_product() {
    check(64, |g| {
        let left = g.vec(0..30, |g| g.string_of("abc", 1..2));
        let right = g.vec(0..30, |g| g.string_of("abc", 1..2));
        let mut lb = TableBuilder::new().column("k", DataType::Str);
        for k in &left {
            lb = lb.row(vec![k.as_str().into()]);
        }
        let mut rb = TableBuilder::new().column("k", DataType::Str);
        for k in &right {
            rb = rb.row(vec![k.as_str().into()]);
        }
        let plan = Plan::values(lb.build().unwrap()).join_on(
            Plan::values(rb.build().unwrap()),
            &["k"],
            &["k"],
        );
        let result = execute(&plan, &Catalog::new()).unwrap();
        assert!(result.num_rows() <= left.len() * right.len());
        let expected: usize = left.iter().map(|l| right.iter().filter(|r| *r == l).count()).sum();
        assert_eq!(result.num_rows(), expected);
        for row in result.rows() {
            assert_eq!(&row[0], &row[1]);
        }
    });
}
