//! Integration tests exercising relq plans the way dasp-core uses them:
//! token tables, weight tables, joins and grouped aggregation, plus property
//! tests comparing the engine against straightforward hand computations.

use proptest::prelude::*;
use relq::{col, execute, AggFunc, Catalog, DataType, Plan, SortOrder, TableBuilder, Value};
use std::collections::{HashMap, HashSet};

fn build_token_catalog(base: &[(i64, &str)], query: &[&str]) -> Catalog {
    let mut bt = TableBuilder::new().column("tid", DataType::Int).column("token", DataType::Str);
    for (tid, tok) in base {
        bt = bt.row(vec![(*tid).into(), (*tok).into()]);
    }
    let mut qt = TableBuilder::new().column("token", DataType::Str);
    for tok in query {
        qt = qt.row(vec![(*tok).into()]);
    }
    let mut c = Catalog::new();
    c.register("base_tokens", bt.build().unwrap());
    c.register("query_tokens", qt.build().unwrap());
    c
}

#[test]
fn weighted_match_style_plan() {
    // BASE_WEIGHTS(tid, token, weight) joined with query tokens, SUM(weight).
    let weights = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("token", DataType::Str)
        .column("weight", DataType::Float)
        .row(vec![1.into(), "morgan".into(), 2.0.into()])
        .row(vec![1.into(), "stanley".into(), 3.0.into()])
        .row(vec![1.into(), "inc".into(), 0.1.into()])
        .row(vec![2.into(), "morgan".into(), 2.0.into()])
        .row(vec![2.into(), "labs".into(), 1.5.into()])
        .build()
        .unwrap();
    let query = TableBuilder::new()
        .column("token", DataType::Str)
        .row(vec!["morgan".into()])
        .row(vec!["stanley".into()])
        .build()
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("base_weights", weights);

    let plan = Plan::scan("base_weights")
        .join_on(Plan::values(query), &["token"], &["token"])
        .aggregate(&["tid"], vec![(AggFunc::Sum(col("weight")), "score")])
        .sort_by("score", SortOrder::Descending);
    let result = execute(&plan, &catalog).unwrap();
    assert_eq!(result.num_rows(), 2);
    assert_eq!(result.value(0, "tid").unwrap(), &Value::Int(1));
    assert_eq!(result.value(0, "score").unwrap().as_f64().unwrap(), 5.0);
    assert_eq!(result.value(1, "score").unwrap().as_f64().unwrap(), 2.0);
}

#[test]
fn three_way_join_like_language_model_plan() {
    // LM needs a join of a per-(tid, token) table with query tokens and a
    // per-tid table (Figure 4.4). Verify a three-way join composes correctly.
    let pm = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("token", DataType::Str)
        .column("pm", DataType::Float)
        .row(vec![1.into(), "a".into(), 0.5.into()])
        .row(vec![1.into(), "b".into(), 0.25.into()])
        .row(vec![2.into(), "a".into(), 0.75.into()])
        .build()
        .unwrap();
    let sums = TableBuilder::new()
        .column("tid", DataType::Int)
        .column("sumcompm", DataType::Float)
        .row(vec![1.into(), (-1.0).into()])
        .row(vec![2.into(), (-2.0).into()])
        .build()
        .unwrap();
    let query = TableBuilder::new()
        .column("token", DataType::Str)
        .row(vec!["a".into()])
        .row(vec!["b".into()])
        .build()
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("base_pm", pm);
    catalog.register("base_sums", sums);

    let inner = Plan::scan("base_pm")
        .join_on(Plan::values(query), &["token"], &["token"])
        .aggregate(&["tid"], vec![(AggFunc::Sum(col("pm").ln()), "score")]);
    let plan = inner
        .join_on(Plan::scan("base_sums"), &["tid"], &["tid"])
        .project(vec![(col("tid"), "tid"), (col("score").add(col("sumcompm")).exp(), "final")])
        .sort_by("final", SortOrder::Descending);
    let result = execute(&plan, &catalog).unwrap();
    assert_eq!(result.num_rows(), 2);
    // tid 2: exp(ln(0.75) - 2) ; tid 1: exp(ln(0.5) + ln(0.25) - 1)
    let t2 = (0.75f64.ln() - 2.0).exp();
    let t1 = (0.5f64.ln() + 0.25f64.ln() - 1.0).exp();
    let top = result.value(0, "final").unwrap().as_f64().unwrap();
    let bottom = result.value(1, "final").unwrap().as_f64().unwrap();
    assert!((top - t2.max(t1)).abs() < 1e-12);
    assert!((bottom - t2.min(t1)).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IntersectSize plan (join + COUNT(*) GROUP BY tid) must agree with a
    /// direct hash-set computation for arbitrary token assignments.
    #[test]
    fn prop_intersect_plan_matches_hashmap(
        base in proptest::collection::vec((0i64..20, "[a-d]{1,2}"), 0..120),
        query in proptest::collection::vec("[a-d]{1,2}", 0..10),
    ) {
        // The paper stores distinct tokens for overlap predicates; emulate that.
        let base_set: HashSet<(i64, String)> =
            base.iter().map(|(t, s)| (*t, s.clone())).collect();
        let query_set: HashSet<String> = query.iter().cloned().collect();

        let base_vec: Vec<(i64, &str)> =
            base_set.iter().map(|(t, s)| (*t, s.as_str())).collect();
        let query_vec: Vec<&str> = query_set.iter().map(|s| s.as_str()).collect();
        let catalog = build_token_catalog(&base_vec, &query_vec);

        let plan = Plan::scan("base_tokens")
            .join_on(Plan::scan("query_tokens"), &["token"], &["token"])
            .aggregate(&["tid"], vec![(AggFunc::CountStar, "score")]);
        let result = execute(&plan, &catalog).unwrap();

        let mut expected: HashMap<i64, i64> = HashMap::new();
        for (tid, tok) in &base_set {
            if query_set.contains(tok) {
                *expected.entry(*tid).or_insert(0) += 1;
            }
        }
        let mut actual: HashMap<i64, i64> = HashMap::new();
        for row in result.rows() {
            actual.insert(row[0].as_i64().unwrap(), row[1].as_i64().unwrap());
        }
        prop_assert_eq!(actual, expected);
    }

    /// SUM/COUNT aggregation over random groups matches a fold.
    #[test]
    fn prop_group_sum_matches_fold(
        rows in proptest::collection::vec((0i64..8, -100.0f64..100.0), 0..200)
    ) {
        let mut builder = TableBuilder::new()
            .column("g", DataType::Int)
            .column("v", DataType::Float);
        for (g, v) in &rows {
            builder = builder.row(vec![(*g).into(), (*v).into()]);
        }
        let table = builder.build().unwrap();
        let plan = Plan::values(table).aggregate(
            &["g"],
            vec![(AggFunc::Sum(col("v")), "s"), (AggFunc::CountStar, "n")],
        );
        let result = execute(&plan, &Catalog::new()).unwrap();

        let mut expected_sum: HashMap<i64, f64> = HashMap::new();
        let mut expected_cnt: HashMap<i64, i64> = HashMap::new();
        for (g, v) in &rows {
            *expected_sum.entry(*g).or_insert(0.0) += v;
            *expected_cnt.entry(*g).or_insert(0) += 1;
        }
        prop_assert_eq!(result.num_rows(), expected_sum.len());
        for row in result.rows() {
            let g = row[0].as_i64().unwrap();
            let s = row[1].as_f64().unwrap();
            let n = row[2].as_i64().unwrap();
            prop_assert!((s - expected_sum[&g]).abs() < 1e-6);
            prop_assert_eq!(n, expected_cnt[&g]);
        }
    }

    /// Joining then counting never produces more rows than |left| * |right|
    /// and respects key equality.
    #[test]
    fn prop_join_is_subset_of_cross_product(
        left in proptest::collection::vec("[a-c]", 0..30),
        right in proptest::collection::vec("[a-c]", 0..30),
    ) {
        let mut lb = TableBuilder::new().column("k", DataType::Str);
        for k in &left { lb = lb.row(vec![k.as_str().into()]); }
        let mut rb = TableBuilder::new().column("k", DataType::Str);
        for k in &right { rb = rb.row(vec![k.as_str().into()]); }
        let plan = Plan::values(lb.build().unwrap())
            .join_on(Plan::values(rb.build().unwrap()), &["k"], &["k"]);
        let result = execute(&plan, &Catalog::new()).unwrap();
        prop_assert!(result.num_rows() <= left.len() * right.len());
        let expected: usize = left
            .iter()
            .map(|l| right.iter().filter(|r| *r == l).count())
            .sum();
        prop_assert_eq!(result.num_rows(), expected);
        for row in result.rows() {
            prop_assert_eq!(&row[0], &row[1]);
        }
    }
}
