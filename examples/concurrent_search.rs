//! Concurrent batch serving: the "thousands of lookups against one corpus"
//! workload of the paper's evaluation chapter, driven through the
//! thread-pooled `ServingEngine` instead of a hand-written loop. Builds one
//! engine over a DBLP-like titles table, fans a mixed-predicate request
//! stream over a pool of workers, and reports per-request accounting
//! (queue wait, execution time, cache hits) plus the per-predicate latency
//! aggregation (`count` / `p50` / `p95` / `max`) that cost-aware scheduling
//! over expensive predicates starts from.
//!
//! Run with: `cargo run -p dasp-bench --release --example concurrent_search`

use dasp_core::{Exec, Params, PredicateKind, ServeRequest, ServingEngine};
use dasp_datagen::dblp_dataset;
use dasp_eval::{build_engine, time_serving};

fn main() {
    let dataset = dblp_dataset(2000);
    let params = Params::default();
    let engine = build_engine(&dataset, &params);
    println!("base relation: {} DBLP-like titles, one shared SelectionEngine", dataset.len());

    // A mixed request stream: five predicate kinds, 30 distinct query
    // strings, top-10 pushdown — with every 4th request a repeat, so the
    // engine's result cache sees serving-shaped traffic too.
    let kinds = [
        PredicateKind::IntersectSize,
        PredicateKind::Cosine,
        PredicateKind::Bm25,
        PredicateKind::Hmm,
        PredicateKind::EditSimilarity,
    ];
    let requests: Vec<ServeRequest> = (0..120)
        .map(|i| {
            // Every 4th request repeats an earlier one verbatim (same
            // predicate, text and mode), so the cache sees hits too.
            let j = if i % 4 == 3 { i - 3 } else { i };
            let text = &dataset.records[(j * 17) % dataset.len()].text;
            ServeRequest::new(kinds[j % kinds.len()], text.clone(), Exec::TopK(10))
        })
        .collect();

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    let serving = ServingEngine::new(engine.clone(), workers);
    let (responses, timing) = time_serving(&serving, &requests);
    println!(
        "\nserved {} requests over {} worker(s) in {:.1} ms ({:.0} queries/sec)",
        requests.len(),
        serving.workers(),
        timing.total.as_secs_f64() * 1e3,
        requests.len() as f64 / timing.total.as_secs_f64()
    );

    // Per-request accounting: results come back in submission order, each
    // with its queue wait, execution time and cache-hit flag.
    println!("\nfirst requests of the stream:");
    for (request, response) in requests.iter().zip(&responses).take(6) {
        let stats = &response.stats;
        let best = response.results.as_ref().unwrap().first();
        println!(
            "  {:<7} wait {:>7.1} us  exec {:>8.1} us  worker {}  {}  {:?} -> {}",
            request.kind.short_name(),
            stats.queue_wait.as_secs_f64() * 1e6,
            stats.exec_time.as_secs_f64() * 1e6,
            stats.worker,
            if stats.cache_hit { "cache" } else { "fresh" },
            &request.text[..request.text.len().min(28)],
            best.map(|s| format!("tid {} ({:.3e})", s.tid, s.score)).unwrap_or_default()
        );
    }

    // Per-predicate latency aggregation over everything served.
    println!(
        "\n{:<8} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "", "count", "hits", "p50 (us)", "p95 (us)", "max (us)"
    );
    for (kind, m) in serving.metrics() {
        println!(
            "{:<8} {:>6} {:>6} {:>10.1} {:>10.1} {:>10.1}",
            kind.short_name(),
            m.count,
            m.cache_hits,
            m.p50.as_secs_f64() * 1e6,
            m.p95.as_secs_f64() * 1e6,
            m.max.as_secs_f64() * 1e6
        );
    }

    let cache = engine.result_cache_stats();
    println!(
        "\nresult cache: {} hits / {} misses ({} entries cached)",
        cache.hits, cache.misses, cache.entries
    );

    // The same stream through the single-threaded batch API: queries are
    // prepared once, handle lookups and cache probes amortized per batch.
    let prepared: Vec<_> =
        requests.iter().map(|r| (r.kind, engine.query(&r.text), r.exec)).collect();
    let started = std::time::Instant::now();
    let batched = engine.execute_many(&prepared);
    println!(
        "execute_many over the same {} prepared requests: {:.1} ms (all byte-identical: {})",
        prepared.len(),
        started.elapsed().as_secs_f64() * 1e3,
        batched
            .iter()
            .zip(&responses)
            .all(|(b, r)| b.as_ref().unwrap() == r.results.as_ref().unwrap())
    );
}
