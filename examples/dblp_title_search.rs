//! Approximate selection over a larger DBLP-like titles table: the
//! performance-oriented scenario of §5.5. Builds a 5,000-title base relation,
//! preprocesses a few predicates, and reports preprocessing/query timings
//! together with the top matches for a misspelled title query.
//!
//! Run with: `cargo run -p dasp-bench --release --example dblp_title_search`

use dasp_core::{Params, PredicateKind};
use dasp_datagen::dblp_dataset;
use dasp_eval::{time_queries, time_tokenization, time_weight_phase};

fn main() {
    let dataset = dblp_dataset(5000);
    println!("base relation: {} DBLP-like titles", dataset.len());

    let params = Params::default();
    let (corpus, tokenize_time) = time_tokenization(&dataset, &params);
    println!(
        "phase-1 tokenization: {:.1} ms ({} distinct q-grams)",
        tokenize_time.as_secs_f64() * 1000.0,
        corpus.num_tokens()
    );

    let queries: Vec<String> = dataset.strings().into_iter().take(20).collect();
    println!("\n{:<10} {:>14} {:>14}", "predicate", "weights (ms)", "avg query (ms)");
    let mut bm25 = None;
    for kind in [
        PredicateKind::Jaccard,
        PredicateKind::Bm25,
        PredicateKind::Hmm,
        PredicateKind::LanguageModel,
    ] {
        let (predicate, weights_time) = time_weight_phase(kind, corpus.clone(), &params);
        let timing = time_queries(predicate.as_ref(), &queries);
        println!(
            "{:<10} {:>14.1} {:>14.2}",
            kind.short_name(),
            weights_time.as_secs_f64() * 1000.0,
            timing.average().as_secs_f64() * 1000.0
        );
        if kind == PredicateKind::Bm25 {
            bm25 = Some(predicate);
        }
    }

    // A misspelled lookup, the "flexible selection" the paper motivates.
    let bm25 = bm25.expect("BM25 was built");
    let query = "aproximate selction predicats for data clening";
    println!("\ntop matches for misspelled query {query:?}:");
    for s in bm25.top_k(query, 5) {
        println!("  score {:7.3}  {}", s.score, dataset.records[s.tid as usize].text);
    }
}
