//! Approximate selection over a larger DBLP-like titles table: the
//! performance-oriented scenario of §5.5. Builds a 5,000-title base relation
//! behind one `SelectionEngine`, reports the phase-1 / phase-2 preprocessing
//! split and per-predicate query timings, and answers a misspelled title
//! lookup with a top-k pushdown.
//!
//! Run with: `cargo run -p dasp-bench --release --example dblp_title_search`

use dasp_core::{Exec, Params, PredicateKind};
use dasp_datagen::dblp_dataset;
use dasp_eval::{time_engine_build, time_predicate_build, time_queries, time_tokenization};

fn main() {
    let dataset = dblp_dataset(5000);
    println!("base relation: {} DBLP-like titles", dataset.len());

    let params = Params::default();
    let (corpus, tokenize_time) = time_tokenization(&dataset, &params);
    println!(
        "phase-1 tokenization: {:.1} ms ({} distinct q-grams)",
        tokenize_time.as_secs_f64() * 1000.0,
        corpus.num_tokens()
    );
    let (engine, engine_time) = time_engine_build(corpus, &params);
    println!(
        "phase-1 shared artifacts (token/weight tables + indexes): {:.1} ms, built once",
        engine_time.as_secs_f64() * 1000.0
    );

    let queries: Vec<String> = dataset.strings().into_iter().take(20).collect();
    println!("\n{:<10} {:>14} {:>14}", "predicate", "weights (ms)", "avg query (ms)");
    for kind in [
        PredicateKind::Jaccard,
        PredicateKind::Bm25,
        PredicateKind::Hmm,
        PredicateKind::LanguageModel,
    ] {
        let (handle, weights_time) = time_predicate_build(&engine, kind);
        let timing = time_queries(&handle, &queries);
        println!(
            "{:<10} {:>14.1} {:>14.2}",
            kind.short_name(),
            weights_time.as_secs_f64() * 1000.0,
            timing.average().as_secs_f64() * 1000.0
        );
    }

    // A misspelled lookup, the "flexible selection" the paper motivates —
    // answered with a top-k pushdown instead of a full ranking.
    let bm25 = engine.predicate(PredicateKind::Bm25);
    let query = engine.query("aproximate selction predicats for data clening");
    println!("\ntop matches for misspelled query {:?}:", query.text());
    for s in bm25.execute(&query, Exec::TopK(5)).unwrap() {
        println!("  score {:7.3}  {}", s.score, dataset.records[s.tid as usize].text);
    }
}
