//! Serving a living corpus: the paper's benchmark assumes a static base
//! relation, but real deduplication services keep ingesting records. This
//! example drives `LiveEngine` — immutable sealed segments plus one mutable
//! tail — through the full lifecycle: seed build, appends, a tombstoned
//! delete, an explicit seal, queries merged across segments under one
//! shared score bar, and a final `compact()` that folds everything back
//! into a single sealed segment with refreshed corpus statistics. The
//! differential check at the end replays every query against a
//! monolithically rebuilt `SelectionEngine` at the same epoch.
//!
//! Run with: `cargo run -p dasp-bench --release --example live_update`

use std::sync::Arc;

use dasp_core::{Corpus, Exec, LiveEngine, Params, PredicateKind, ServeRequest, ServingEngine};
use dasp_datagen::dblp_dataset;

fn main() {
    let dataset = dblp_dataset(400);
    // A small seal limit so the demo grows several segments.
    let params = Params { segment_seal: 64, ..Params::default() };

    // Seed corpus becomes the first sealed segment; its statistics (df, cf,
    // avgdl, ...) are frozen until the next compact().
    let live = LiveEngine::from_corpus(Corpus::from_strings(dataset.strings()), &params);
    println!(
        "seeded live engine: {} records, epoch {}, seal limit {}",
        live.len(),
        live.epoch(),
        live.seal_limit()
    );

    // Ingest a stream of new titles. Each append is O(tail): only the small
    // mutable tail segment is re-tokenized and re-indexed.
    let stream = dblp_dataset(560);
    let mut appended = Vec::new();
    for record in &stream.records[400..] {
        appended.push(live.append(record.text.clone()));
    }
    println!(
        "appended {} records -> epoch {}, {} sealed segment(s) + tail of {}",
        appended.len(),
        live.epoch(),
        live.metrics().sealed_segments,
        live.metrics().tail_len
    );

    // Tombstone one of the appended records; it disappears from every
    // subsequent result without touching any segment index.
    let victim = appended[3];
    assert!(live.delete(victim));
    println!("deleted tid {victim} (tombstoned, epoch {})", live.epoch());

    // Freeze the current tail explicitly — e.g. ahead of a low-traffic
    // window — so later appends start a fresh tail.
    live.seal();

    // Queries run the existing bounded traversals per segment and merge
    // under one shared top-k bar; results are globally ranked.
    let queries = [
        (PredicateKind::Cosine, &stream.records[410].text),
        (PredicateKind::Bm25, &stream.records[7].text),
        (PredicateKind::Jaccard, &stream.records[430].text),
    ];
    for (kind, text) in &queries {
        let hits = live.execute(*kind, text, Exec::TopK(5)).expect("query succeeds");
        let top = hits.first().map(|s| format!("tid {} @ {:.4}", s.tid, s.score));
        println!("{kind:?} top-5 for {text:?}: {} hits, best {:?}", hits.len(), top);
        assert!(hits.iter().all(|s| s.tid != victim), "tombstoned tid must not surface");
    }

    // The same engine serves a concurrent request pool (PR 4's
    // ServingEngine) — readers share epoch/Arc snapshots, never lock out
    // the writer.
    let live = Arc::new(live);
    let serving = ServingEngine::new_live(live.clone(), 4);
    let requests: Vec<ServeRequest> = (0..40)
        .map(|i| {
            let (kind, text) = &queries[i % queries.len()];
            // Alternate k so half the stream misses the result cache and
            // actually probes the segments.
            ServeRequest::new(*kind, (*text).clone(), Exec::TopK(if i % 2 == 0 { 5 } else { 8 }))
        })
        .collect();
    let responses = serving.serve(&requests);
    let probed: u64 =
        responses.iter().filter_map(|r| r.stats.live.map(|l| l.segments_probed as u64)).sum();
    let cache_hits = responses.iter().filter(|r| r.stats.cache_hit).count();
    println!(
        "served {} concurrent requests (epoch {}, {} cache hits, {} segment probes total)",
        responses.len(),
        live.epoch(),
        cache_hits,
        probed
    );

    // Differential contract: a monolithic engine rebuilt over the live
    // records at this epoch returns bit-identical rankings.
    let (monolith, tid_map) = live.rebuild_monolith();
    for (kind, text) in &queries {
        let live_hits = live.execute(*kind, text, Exec::Rank).expect("live rank");
        let handle = monolith.predicate(*kind);
        let mono_hits = handle.execute(&monolith.query(text), Exec::Rank).expect("monolith rank");
        assert_eq!(live_hits.len(), mono_hits.len());
        for (l, m) in live_hits.iter().zip(&mono_hits) {
            assert_eq!(l.tid, tid_map[m.tid as usize]);
            assert_eq!(l.score.to_bits(), m.score.to_bits());
        }
    }
    println!("differential check vs rebuilt monolith: rankings bit-identical");

    // Compaction folds all segments into one, drops tombstones for good and
    // refreshes the frozen statistics so new vocabulary becomes searchable.
    live.compact();
    let m = live.metrics();
    println!(
        "compacted -> epoch {}, {} sealed segment(s), tail {}, {} live records, {} tombstones",
        m.epoch, m.sealed_segments, m.tail_len, m.live_records, m.tombstones
    );
}
