//! Side-by-side comparison of every predicate class on the error types the
//! paper analyses in §5.4: abbreviation errors, token swaps and edit errors.
//! This reproduces, on a small scale, the qualitative arguments behind
//! Tables 5.5 and 5.6. Each dataset gets one `SelectionEngine`; every
//! predicate and every sampled query reuses its shared artifacts.
//!
//! Run with: `cargo run -p dasp-bench --release --example predicate_comparison`

use dasp_core::PredicateKind;
use dasp_datagen::presets::{f_dataset_sized, f_spec};
use dasp_eval::{build_engine, evaluate_engine, TextTable};

fn main() {
    let params = dasp_core::Params::default();
    let specs = ["F1", "F2", "F3", "F5"];
    let labels = ["abbrev (F1)", "token swap (F2)", "10% edit (F3)", "30% edit (F5)"];
    let kinds = [
        PredicateKind::IntersectSize,
        PredicateKind::Jaccard,
        PredicateKind::WeightedMatch,
        PredicateKind::WeightedJaccard,
        PredicateKind::Cosine,
        PredicateKind::Bm25,
        PredicateKind::LanguageModel,
        PredicateKind::Hmm,
        PredicateKind::EditSimilarity,
        PredicateKind::Ges,
        PredicateKind::SoftTfIdf,
    ];

    let datasets: Vec<_> =
        specs.iter().map(|name| f_dataset_sized(f_spec(name).unwrap(), 800, 80)).collect();
    // One engine per dataset: tokenization and shared tables built once,
    // then reused by all eleven predicates below.
    let results: Vec<_> = datasets
        .iter()
        .map(|d| evaluate_engine(&build_engine(d, &params), &kinds, d, 40, 7))
        .collect();

    let mut headers = vec!["predicate"];
    headers.extend(labels);
    let mut table = TextTable::new("MAP by error type (small-scale Tables 5.5 / 5.6)", &headers);

    for (i, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.short_name().to_string()];
        for per_dataset in &results {
            row.push(format!("{:.3}", per_dataset[i].1.map));
        }
        table.add_row(row);
    }
    print!("{}", table.render());
    println!("\nExpected shape (paper §5.4): weighted predicates ≈ 1.0 on abbreviation errors;");
    println!("everything except ED/GES handles token swaps; GES and the IR-weighted predicates");
    println!("degrade most gracefully as edit error grows; unweighted overlap degrades fastest.");
}
