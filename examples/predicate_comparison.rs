//! Side-by-side comparison of every predicate class on the error types the
//! paper analyses in §5.4: abbreviation errors, token swaps and edit errors.
//! This reproduces, on a small scale, the qualitative arguments behind
//! Tables 5.5 and 5.6.
//!
//! Run with: `cargo run -p dasp-bench --release --example predicate_comparison`

use dasp_core::{build_predicate, Params, PredicateKind};
use dasp_datagen::presets::{f_dataset_sized, f_spec};
use dasp_eval::{evaluate_accuracy, tokenize_dataset, TextTable};

fn main() {
    let params = Params::default();
    let specs = ["F1", "F2", "F3", "F5"];
    let labels = ["abbrev (F1)", "token swap (F2)", "10% edit (F3)", "30% edit (F5)"];

    let datasets: Vec<_> =
        specs.iter().map(|name| f_dataset_sized(f_spec(name).unwrap(), 800, 80)).collect();
    let corpora: Vec<_> = datasets.iter().map(|d| tokenize_dataset(d, &params)).collect();

    let mut headers = vec!["predicate"];
    headers.extend(labels);
    let mut table = TextTable::new("MAP by error type (small-scale Tables 5.5 / 5.6)", &headers);

    for kind in [
        PredicateKind::IntersectSize,
        PredicateKind::Jaccard,
        PredicateKind::WeightedMatch,
        PredicateKind::WeightedJaccard,
        PredicateKind::Cosine,
        PredicateKind::Bm25,
        PredicateKind::LanguageModel,
        PredicateKind::Hmm,
        PredicateKind::EditSimilarity,
        PredicateKind::Ges,
        PredicateKind::SoftTfIdf,
    ] {
        let mut row = vec![kind.short_name().to_string()];
        for (dataset, corpus) in datasets.iter().zip(&corpora) {
            let predicate = build_predicate(kind, corpus.clone(), &params);
            let result = evaluate_accuracy(predicate.as_ref(), dataset, 40, 7);
            row.push(format!("{:.3}", result.map));
        }
        table.add_row(row);
    }
    print!("{}", table.render());
    println!("\nExpected shape (paper §5.4): weighted predicates ≈ 1.0 on abbreviation errors;");
    println!("everything except ED/GES handles token swaps; GES and the IR-weighted predicates");
    println!("degrade most gracefully as edit error grows; unweighted overlap degrades fastest.");
}
