//! Quickstart: build a small base relation, preprocess it for BM25 and run an
//! approximate selection — the 30-second tour of the public API.
//!
//! Run with: `cargo run -p dasp-bench --example quickstart`

use dasp_core::{build_predicate, Corpus, Params, PredicateKind, TokenizedCorpus};
use std::sync::Arc;

fn main() {
    // 1. The base relation: a handful of dirty company names.
    let corpus = Corpus::from_strings(vec![
        "Morgan Stanley Group Inc.",
        "Morgan Stanle Grop Incorporated",
        "Stalney Morgan Group Inc.",
        "Goldman Sachs Group Inc.",
        "Silicon Valley Group, Inc.",
        "Beijing Hotel",
        "Beijing Labs Limited",
        "AT&T Incorporated",
        "AT&T Inc.",
    ]);

    // 2. Phase-1 preprocessing: tokenize into q-grams (q = 2, the paper's choice).
    let tokenized = Arc::new(TokenizedCorpus::build(corpus, Params::default().qgram));
    println!(
        "base relation: {} tuples, {} distinct q-grams, avgdl {:.1}",
        tokenized.num_records(),
        tokenized.num_tokens(),
        tokenized.avgdl()
    );

    // 3. Phase-2 preprocessing: build a predicate (weight tables).
    let params = Params::default();
    let bm25 = build_predicate(PredicateKind::Bm25, tokenized.clone(), &params);

    // 4. Approximate selection: rank tuples by similarity to a dirty query.
    let query = "Morgan Stanley Group Incorporated";
    println!("\nBM25 ranking for query {query:?}:");
    for s in bm25.top_k(query, 5) {
        println!(
            "  tid {:>2}  score {:8.4}  {}",
            s.tid,
            s.score,
            tokenized.corpus().records()[s.tid as usize].text
        );
    }

    // 5. The same query through a different predicate class for comparison.
    let soft = build_predicate(PredicateKind::SoftTfIdf, tokenized.clone(), &params);
    println!("\nSoftTFIDF (Jaro-Winkler) ranking for the same query:");
    for s in soft.top_k(query, 5) {
        println!(
            "  tid {:>2}  score {:8.4}  {}",
            s.tid,
            s.score,
            tokenized.corpus().records()[s.tid as usize].text
        );
    }

    // 6. Threshold-based selection (the approximate selection operator).
    let selected = bm25.select(query, 5.0);
    println!("\ntuples with BM25 score >= 5.0: {}", selected.len());
}
