//! Quickstart: build a small base relation, spin up a `SelectionEngine`, and
//! run approximate selections with prepared queries and pushdown execution
//! modes — the 30-second tour of the public API.
//!
//! Run with: `cargo run -p dasp-bench --example quickstart`

use dasp_core::{Corpus, Exec, Params, PredicateKind, SelectionEngine};

fn main() {
    // 1. The base relation: a handful of dirty company names.
    let corpus = Corpus::from_strings(vec![
        "Morgan Stanley Group Inc.",
        "Morgan Stanle Grop Incorporated",
        "Stalney Morgan Group Inc.",
        "Goldman Sachs Group Inc.",
        "Silicon Valley Group, Inc.",
        "Beijing Hotel",
        "Beijing Labs Limited",
        "AT&T Incorporated",
        "AT&T Inc.",
    ]);

    // 2. Build the engine: phase-1 preprocessing (q-gram tokenization with
    //    q = 2, the paper's choice, plus shared token/weight tables) runs
    //    exactly once here, shared by every predicate.
    let engine = SelectionEngine::from_corpus(corpus, &Params::default());
    let tokenized = engine.corpus();
    println!(
        "base relation: {} tuples, {} distinct q-grams, avgdl {:.1}",
        tokenized.num_records(),
        tokenized.num_tokens(),
        tokenized.avgdl()
    );

    // 3. Predicate handles: phase-2 preprocessing (weight tables) happens on
    //    first use per kind and is cached by the engine.
    let bm25 = engine.predicate(PredicateKind::Bm25);
    let soft = engine.predicate(PredicateKind::SoftTfIdf);

    // 4. Prepare the query once — tokenized a single time, reusable across
    //    all predicates and execution modes.
    let query = engine.query("Morgan Stanley Group Incorporated");

    // 5. Top-k approximate selection. `Exec::TopK` is pushed down into the
    //    engine (a bounded heap over the candidate stream), so the full
    //    ranking is never materialized or sorted.
    println!("\nBM25 top-5 for query {:?}:", query.text());
    for s in bm25.execute(&query, Exec::TopK(5)).unwrap() {
        println!(
            "  tid {:>2}  score {:8.4}  {}",
            s.tid,
            s.score,
            tokenized.corpus().records()[s.tid as usize].text
        );
    }

    // 6. The same prepared query through a different predicate class.
    println!("\nSoftTFIDF (Jaro-Winkler) top-5 for the same query:");
    for s in soft.execute(&query, Exec::TopK(5)).unwrap() {
        println!(
            "  tid {:>2}  score {:8.4}  {}",
            s.tid,
            s.score,
            tokenized.corpus().records()[s.tid as usize].text
        );
    }

    // 7. Threshold selection (the approximate selection operator): for BM25
    //    this runs the score-bounded traversal with the bar fixed at τ —
    //    candidates whose posting-list upper bounds cannot reach τ are never
    //    scored — and returns bit-identical results to the exhaustive scan.
    let selected = bm25.execute(&query, Exec::Threshold(5.0)).unwrap();
    let scanned = bm25.execute(&query, Exec::ThresholdScan(5.0)).unwrap();
    assert_eq!(selected, scanned, "bounded threshold must match the exhaustive scan");
    println!("\ntuples with BM25 score >= 5.0: {}", selected.len());
}
