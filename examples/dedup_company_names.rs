//! De-duplicating a dirty company-name table — the scenario that motivates
//! the paper's introduction. Generates a dirty dataset with the UIS-style
//! generator, then measures how well several predicates pull each cluster's
//! duplicates to the top of the ranking.
//!
//! Run with: `cargo run -p dasp-bench --release --example dedup_company_names`

use dasp_core::{build_predicate, Params, PredicateKind};
use dasp_datagen::presets::{cu_dataset_sized, cu_spec};
use dasp_eval::{evaluate_accuracy, tokenize_dataset};

fn main() {
    // A medium-error company dataset: 1,000 tuples from 100 clean names.
    let dataset = cu_dataset_sized(cu_spec("CU5").unwrap(), 1000, 100);
    println!(
        "dataset {}: {} records, {} clusters, {:.0}% erroneous",
        dataset.name,
        dataset.len(),
        dataset.num_clusters(),
        dataset.erroneous_fraction() * 100.0
    );

    let params = Params::default();
    let corpus = tokenize_dataset(&dataset, &params);

    println!("\n{:<14} {:>8} {:>10}", "predicate", "MAP", "max-F1");
    for kind in [
        PredicateKind::Jaccard,
        PredicateKind::Cosine,
        PredicateKind::Bm25,
        PredicateKind::Hmm,
        PredicateKind::EditSimilarity,
        PredicateKind::SoftTfIdf,
    ] {
        let predicate = build_predicate(kind, corpus.clone(), &params);
        let result = evaluate_accuracy(predicate.as_ref(), &dataset, 50, 42);
        println!("{:<14} {:>8.3} {:>10.3}", kind.short_name(), result.map, result.mean_max_f1);
    }

    // Show one concrete de-duplication: the duplicates found for a dirty tuple.
    let query = &dataset.records[3];
    let bm25 = build_predicate(PredicateKind::Bm25, corpus, &params);
    println!("\nduplicates retrieved for query {:?} (cluster {}):", query.text, query.cluster);
    for s in bm25.top_k(&query.text, 8) {
        let r = &dataset.records[s.tid as usize];
        let marker = if r.cluster == query.cluster { "*" } else { " " };
        println!("  {marker} score {:7.3}  {}", s.score, r.text);
    }
    println!("(* = true duplicate, same cluster id)");
}
