//! De-duplicating a dirty company-name table — the scenario that motivates
//! the paper's introduction. Generates a dirty dataset with the UIS-style
//! generator, then measures how well several predicates pull each cluster's
//! duplicates to the top of the ranking. All predicates run through one
//! `SelectionEngine`, so the corpus-level preprocessing happens once.
//!
//! Run with: `cargo run -p dasp-bench --release --example dedup_company_names`

use dasp_core::{Exec, Params, PredicateKind};
use dasp_datagen::presets::{cu_dataset_sized, cu_spec};
use dasp_eval::{build_engine, evaluate_engine};

fn main() {
    // A medium-error company dataset: 1,000 tuples from 100 clean names.
    let dataset = cu_dataset_sized(cu_spec("CU5").unwrap(), 1000, 100);
    println!(
        "dataset {}: {} records, {} clusters, {:.0}% erroneous",
        dataset.name,
        dataset.len(),
        dataset.num_clusters(),
        dataset.erroneous_fraction() * 100.0
    );

    let engine = build_engine(&dataset, &Params::default());
    let kinds = [
        PredicateKind::Jaccard,
        PredicateKind::Cosine,
        PredicateKind::Bm25,
        PredicateKind::Hmm,
        PredicateKind::EditSimilarity,
        PredicateKind::SoftTfIdf,
    ];

    println!("\n{:<14} {:>8} {:>10}", "predicate", "MAP", "max-F1");
    for (kind, result) in evaluate_engine(&engine, &kinds, &dataset, 50, 42) {
        println!("{:<14} {:>8.3} {:>10.3}", kind.short_name(), result.map, result.mean_max_f1);
    }

    // Show one concrete de-duplication: the duplicates found for a dirty
    // tuple, via a top-k pushdown (no full ranking is materialized).
    let query_record = &dataset.records[3];
    let bm25 = engine.predicate(PredicateKind::Bm25);
    let query = engine.query(&query_record.text);
    println!(
        "\nduplicates retrieved for query {:?} (cluster {}):",
        query_record.text, query_record.cluster
    );
    for s in bm25.execute(&query, Exec::TopK(8)).unwrap() {
        let r = &dataset.records[s.tid as usize];
        let marker = if r.cluster == query_record.cluster { "*" } else { " " };
        println!("  {marker} score {:7.3}  {}", s.score, r.text);
    }
    println!("(* = true duplicate, same cluster id)");
}
